//! The unified two-phase release API: **plan once, release many**.
//!
//! Everything the paper's pipeline does before data arrives is
//! data-independent — choosing a strategy, deriving its group structure,
//! solving the Step-2 budget allocation, predicting per-query variances.
//! This module makes that split explicit:
//!
//! 1. [`PlanBuilder`] compiles a [`WorkloadSpec`] (marginal *or* range
//!    workloads behind one enum) into a [`Plan`]: the compiled strategy
//!    operator, solved noise budgets, achieved ε and per-query variance
//!    predictions. No table or histogram is consulted. Plans are
//!    serde-serializable (see [`crate::serde_impls`]) so they can be
//!    shipped between processes.
//! 2. [`Session`] binds a plan to concrete data (a [`ContingencyTable`] or
//!    a histogram), computing the exact observations `z = S·x` once, and
//!    serves releases: [`Session::release`] for one, or
//!    [`Session::release_batch`] to fan a whole batch of seeds out with
//!    rayon. Every release is deterministic in its seed — and byte-identical
//!    to the legacy single-shot paths (`ReleasePlanner`,
//!    `plan_range_release`), which are now thin wrappers over the same
//!    machinery.
//! 3. [`PlanCache`] memoizes compiled plans keyed by (schema fingerprint,
//!    workload, strategy, budgeting, privacy, neighbouring), so a service
//!    handling repeated requests performs the budget solve (and the cluster
//!    search, coefficient-space construction, …) exactly once per distinct
//!    request shape.
//!
//! ```
//! use dp_core::api::{PlanBuilder, Session};
//! use dp_core::prelude::*;
//!
//! let schema = Schema::binary(4).unwrap();
//! let workload = Workload::all_k_way(&schema, 2).unwrap();
//! // Phase 1: compile a data-independent plan at ε = 1.
//! let plan = PlanBuilder::marginals(workload, StrategyKind::Fourier)
//!     .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
//!     .compile()
//!     .unwrap();
//! // Phase 2: bind data and serve a deterministic batch of releases.
//! let records = vec![vec![0, 1, 0, 1], vec![1, 1, 0, 0]];
//! let table = ContingencyTable::from_records(&schema, &records).unwrap();
//! let session = Session::bind(&plan, &table).unwrap();
//! let releases = session.release_batch(&[1, 2, 3]).unwrap();
//! assert_eq!(releases.len(), 3);
//! ```

use crate::marginal::MarginalTable;
use crate::range::{CompiledRangeStrategy, RangeStrategy, RangeWorkload};
use crate::release::{CompiledMarginalStrategy, Release, StrategyKind};
use crate::schema::Schema;
use crate::strategy::{mechanism_factor, noise_variance, Budgeting, StrategyOperator};
use crate::table::ContingencyTable;
use crate::workload::Workload;
use crate::{
    cluster::{CentroidSearch, ClusterConfig, Clustering},
    CoreError,
};
use dp_mech::{Neighboring, PrivacyLevel};
use dp_opt::budget::{objective_value, BudgetSolution, GroupSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a plan releases: a marginal workload over a contingency table, or a
/// range-count workload over a 1-D histogram — the two workload families of
/// the paper, behind one type.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Marginal tables of a `d`-bit contingency table (Sections 4–5).
    Marginals {
        /// The marginal queries to answer.
        workload: Workload,
        /// The strategy matrix family (Step 1).
        strategy: StrategyKind,
        /// Configuration of the cluster-strategy search (only meaningful
        /// for [`StrategyKind::Cluster`]; normalized to the default for
        /// every other strategy, so it never perturbs plan identity).
        cluster: ClusterConfig,
    },
    /// Interval counts over a power-of-two 1-D domain (Section 3.1's
    /// groupable range strategies).
    Ranges {
        /// The interval queries to answer.
        workload: RangeWorkload,
        /// The strategy matrix family (Step 1).
        strategy: RangeStrategy,
    },
}

impl WorkloadSpec {
    /// Number of queries the plan answers (marginals or ranges).
    pub fn num_queries(&self) -> usize {
        match self {
            WorkloadSpec::Marginals { workload, .. } => workload.len(),
            WorkloadSpec::Ranges { workload, .. } => workload.ranges().len(),
        }
    }

    /// Short method label matching the paper's figure legends (`"F"`,
    /// `"H"`, …) without the budgeting suffix.
    pub fn strategy_label(&self) -> &'static str {
        match self {
            WorkloadSpec::Marginals { strategy, .. } => strategy.label(),
            WorkloadSpec::Ranges { strategy, .. } => strategy.label(),
        }
    }

    /// Normalizes the spec: the cluster config is only meaningful for the
    /// cluster strategy, so every other strategy carries the default —
    /// keeping plan equality, cache keys and serialized documents free of
    /// irrelevant configuration.
    pub(crate) fn normalized(mut self) -> WorkloadSpec {
        if let WorkloadSpec::Marginals {
            strategy, cluster, ..
        } = &mut self
        {
            if *strategy != StrategyKind::Cluster {
                *cluster = ClusterConfig::default();
            }
        }
        self
    }

    /// Canonical `u64` encoding of the spec, the basis of plan-cache keys
    /// and [`Plan::fingerprint`].
    fn key_words(&self, out: &mut Vec<u64>) {
        match self {
            WorkloadSpec::Marginals {
                workload,
                strategy,
                cluster,
            } => {
                out.push(1);
                out.push(workload.domain_bits() as u64);
                out.push(match strategy {
                    StrategyKind::Identity => 0,
                    StrategyKind::Workload => 1,
                    StrategyKind::Fourier => 2,
                    StrategyKind::Cluster => 3,
                });
                // `cluster.parallel` is an execution hint — it provably
                // never changes the clustering (deterministic min-reduce;
                // see the invariance tests) — so it is excluded here:
                // plans differing only in the fan-out share one cache
                // entry and one fingerprint.
                out.push(match cluster.search {
                    CentroidSearch::Union => 0,
                    CentroidSearch::AllDominatingCuboids => 1,
                });
                out.push(u64::from(cluster.faithful));
                out.extend(workload.marginals().iter().map(|m| m.0));
            }
            WorkloadSpec::Ranges { workload, strategy } => {
                out.push(2);
                out.push(workload.domain() as u64);
                match strategy {
                    RangeStrategy::Identity => out.push(0),
                    RangeStrategy::Hierarchical => out.push(1),
                    RangeStrategy::Wavelet => out.push(2),
                    RangeStrategy::Sketch {
                        repetitions,
                        buckets,
                        seed,
                    } => out.extend([3, *repetitions as u64, *buckets as u64, *seed]),
                }
                for &(lo, hi) in workload.ranges() {
                    out.extend([lo as u64, hi as u64]);
                }
            }
        }
    }
}

/// A stable fingerprint of a schema (attribute names + cardinalities),
/// for keying cached plans by the relation they were compiled against.
/// Two schemas that encode to the same bit layout but describe different
/// relations fingerprint differently.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |b: u64| {
        h = (h ^ b).wrapping_mul(0x100000001b3);
    };
    for a in schema.attributes() {
        for byte in a.name.bytes() {
            mix(byte as u64);
        }
        mix(0xff); // name terminator
        mix(a.cardinality as u64);
    }
    h
}

/// Builder for a data-independent [`Plan`]. Defaults: optimal budgets,
/// pure ε-DP at ε = 1, add/remove-one neighbours (the paper's experimental
/// configuration).
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    spec: WorkloadSpec,
    budgeting: Budgeting,
    privacy: PrivacyLevel,
    neighboring: Neighboring,
    schema_tag: u64,
}

impl PlanBuilder {
    /// Starts a plan for a marginal workload (cluster strategies use the
    /// optimized default search; see [`PlanBuilder::cluster_config`]).
    pub fn marginals(workload: Workload, strategy: StrategyKind) -> PlanBuilder {
        PlanBuilder::new(WorkloadSpec::Marginals {
            workload,
            strategy,
            cluster: ClusterConfig::default(),
        })
    }

    /// Starts a plan for a range workload.
    pub fn ranges(workload: RangeWorkload, strategy: RangeStrategy) -> PlanBuilder {
        PlanBuilder::new(WorkloadSpec::Ranges { workload, strategy })
    }

    /// Starts a plan from an explicit [`WorkloadSpec`] (normalized: a
    /// cluster config on a non-cluster strategy is reset to the default).
    pub fn new(spec: WorkloadSpec) -> PlanBuilder {
        PlanBuilder {
            spec: spec.normalized(),
            budgeting: Budgeting::Optimal,
            privacy: PrivacyLevel::Pure { epsilon: 1.0 },
            neighboring: Neighboring::AddRemove,
            schema_tag: 0,
        }
    }

    /// Sets the budget-allocation mode (default: the paper's optimal
    /// non-uniform allocation).
    pub fn budgeting(mut self, budgeting: Budgeting) -> PlanBuilder {
        self.budgeting = budgeting;
        self
    }

    /// Sets the privacy guarantee (default: pure ε-DP at ε = 1). Both pure
    /// and approximate levels are supported for marginal *and* range
    /// workloads.
    pub fn privacy(mut self, privacy: PrivacyLevel) -> PlanBuilder {
        self.privacy = privacy;
        self
    }

    /// Sets the neighbouring-database convention (default: add/remove-one;
    /// `Replace` halves every budget per Proposition 3.1).
    pub fn neighboring(mut self, neighboring: Neighboring) -> PlanBuilder {
        self.neighboring = neighboring;
        self
    }

    /// Configures the cluster-strategy search (default:
    /// [`ClusterConfig::FAST`] — incremental, pruned, rayon-parallel).
    /// Pass [`ClusterConfig::PAPER`] for the paper-faithful exponential
    /// walk of the Figure-6 reproduction; both produce the identical
    /// clustering. Ignored unless the spec is a marginal workload with
    /// [`StrategyKind::Cluster`].
    pub fn cluster_config(mut self, config: ClusterConfig) -> PlanBuilder {
        if let WorkloadSpec::Marginals {
            strategy: StrategyKind::Cluster,
            cluster,
            ..
        } = &mut self.spec
        {
            *cluster = config;
        }
        self
    }

    /// Tags the plan with the fingerprint of the schema it will serve, so
    /// [`PlanCache`] keys distinguish identical bit-level workloads over
    /// different relations.
    pub fn for_schema(mut self, schema: &Schema) -> PlanBuilder {
        self.schema_tag = schema_fingerprint(schema);
        self
    }

    /// The cache key of the plan this builder would compile.
    fn key(&self) -> PlanKey {
        plan_key(
            &self.spec,
            self.budgeting,
            self.privacy,
            self.neighboring,
            self.schema_tag,
        )
    }

    /// Compiles the plan: builds the strategy operator (including the
    /// cluster search and coefficient spaces for marginal strategies, or
    /// the closed-form level structure for range strategies), solves the
    /// Step-2 budgets, validates the achieved ε and predicts per-query
    /// variances. No data is consulted.
    pub fn compile(self) -> Result<Plan, CoreError> {
        let compiled = Compiled::build(&self.spec)?;
        let solution = compiled.solve_budgets(self.privacy, self.budgeting)?;
        Plan::finish(
            self.spec,
            self.budgeting,
            self.privacy,
            self.neighboring,
            self.schema_tag,
            compiled,
            solution,
        )
    }
}

/// The compiled (non-serialized) half of a plan: the strategy operator and
/// shared release engine for each workload family.
pub(crate) enum Compiled {
    /// A compiled marginal strategy.
    Marginals(CompiledMarginalStrategy),
    /// A compiled range strategy.
    Ranges(CompiledRangeStrategy),
}

impl Compiled {
    fn build(spec: &WorkloadSpec) -> Result<Compiled, CoreError> {
        Ok(match spec {
            WorkloadSpec::Marginals {
                workload,
                strategy,
                cluster,
            } => Compiled::Marginals(CompiledMarginalStrategy::build(
                workload, *strategy, *cluster,
            )?),
            WorkloadSpec::Ranges { workload, strategy } => {
                Compiled::Ranges(CompiledRangeStrategy::build(workload, *strategy)?)
            }
        })
    }

    fn group_specs(&self) -> &[GroupSpec] {
        match self {
            Compiled::Marginals(c) => c.engine.strategy().group_specs(),
            Compiled::Ranges(c) => c.engine.strategy().group_specs(),
        }
    }

    fn num_groups(&self) -> usize {
        self.group_specs().len()
    }

    fn solve_budgets(
        &self,
        privacy: PrivacyLevel,
        budgeting: Budgeting,
    ) -> Result<BudgetSolution, CoreError> {
        match self {
            Compiled::Marginals(c) => c.engine.solve_budgets(privacy, budgeting),
            Compiled::Ranges(c) => c.engine.solve_budgets(privacy, budgeting),
        }
    }

    fn achieved_epsilon(&self, privacy: PrivacyLevel, budgets: &[f64]) -> f64 {
        match self {
            Compiled::Marginals(c) => c.engine.achieved_epsilon(privacy, budgets),
            Compiled::Ranges(c) => c.engine.achieved_epsilon(privacy, budgets),
        }
    }

    /// Adds `delta` units at data cell `cell` to an observation vector:
    /// `z += delta · S[·, cell]` through the strategy's sparse column.
    fn apply_delta(&self, z: &mut [f64], cell: u64, delta: f64) -> Result<(), CoreError> {
        match self {
            Compiled::Marginals(c) => c.apply_delta(z, cell, delta),
            Compiled::Ranges(c) => c.apply_delta(z, cell, delta),
        }
    }
}

/// A compiled, **data-independent** release plan: the strategy operator,
/// the solved Step-2 budgets, the achieved ε they imply, and per-query
/// variance predictions. Bind it to data with [`Session`]; cache it with
/// [`PlanCache`]; ship it between processes via serde (the receiving side
/// recompiles the operator from the spec and reuses the solved budgets).
pub struct Plan {
    spec: WorkloadSpec,
    budgeting: Budgeting,
    privacy: PrivacyLevel,
    neighboring: Neighboring,
    schema_tag: u64,
    solution: BudgetSolution,
    achieved_epsilon: f64,
    predicted_variance: f64,
    query_variances: Vec<f64>,
    /// Shared so [`Plan::resolved_at`] can re-solve at another privacy
    /// level without recompiling the strategy.
    compiled: Arc<Compiled>,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("label", &self.label())
            .field("queries", &self.spec.num_queries())
            .field("groups", &self.solution.group_budgets.len())
            .field("achieved_epsilon", &self.achieved_epsilon)
            .field("predicted_variance", &self.predicted_variance)
            .finish_non_exhaustive()
    }
}

impl PartialEq for Plan {
    /// Two plans are equal when every serialized (data) part matches; the
    /// compiled operators are deterministic functions of those parts.
    fn eq(&self, other: &Plan) -> bool {
        self.spec == other.spec
            && self.budgeting == other.budgeting
            && self.privacy == other.privacy
            && self.neighboring == other.neighboring
            && self.schema_tag == other.schema_tag
            && self.solution == other.solution
            && self.achieved_epsilon == other.achieved_epsilon
    }
}

impl Plan {
    /// Finishes a plan from a compiled strategy and a budget solution:
    /// validates feasibility (Proposition 3.1) and derives the variance
    /// predictions. Shared by [`PlanBuilder::compile`] and the serde
    /// deserializer (which reuses a shipped solution instead of re-solving).
    pub(crate) fn finish(
        spec: WorkloadSpec,
        budgeting: Budgeting,
        privacy: PrivacyLevel,
        neighboring: Neighboring,
        schema_tag: u64,
        compiled: Compiled,
        solution: BudgetSolution,
    ) -> Result<Plan, CoreError> {
        Plan::finish_shared(
            spec,
            budgeting,
            privacy,
            neighboring,
            schema_tag,
            Arc::new(compiled),
            solution,
        )
    }

    /// [`Plan::finish`] over an already-shared compiled strategy (the
    /// [`Plan::resolved_at`] path).
    fn finish_shared(
        spec: WorkloadSpec,
        budgeting: Budgeting,
        privacy: PrivacyLevel,
        neighboring: Neighboring,
        schema_tag: u64,
        compiled: Arc<Compiled>,
        solution: BudgetSolution,
    ) -> Result<Plan, CoreError> {
        privacy.validate()?;
        if solution.group_budgets.len() != compiled.num_groups() {
            return Err(CoreError::Shape {
                context: "plan budget solution",
                expected: compiled.num_groups(),
                actual: solution.group_budgets.len(),
            });
        }
        let factor = neighboring.sensitivity_factor();
        let adjusted: Vec<f64> = solution.group_budgets.iter().map(|&e| e / factor).collect();
        let achieved = compiled.achieved_epsilon(privacy, &adjusted) * factor;
        if achieved > privacy.epsilon() * (1.0 + 1e-9) {
            return Err(CoreError::InfeasibleBudgets {
                achieved,
                requested: privacy.epsilon(),
            });
        }
        let predicted_variance = mechanism_factor(privacy) * solution.objective * factor * factor;
        let group_sigma2: Vec<f64> = adjusted
            .iter()
            .map(|&eta| {
                if eta > 0.0 {
                    noise_variance(privacy, eta)
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let query_variances = match (&*compiled, &spec) {
            (
                Compiled::Marginals(c),
                WorkloadSpec::Marginals {
                    workload, strategy, ..
                },
            ) => c.predict_query_variances(workload, *strategy, &group_sigma2),
            (Compiled::Ranges(c), WorkloadSpec::Ranges { workload, strategy }) => {
                if group_sigma2.iter().any(|v| !v.is_finite()) {
                    return Err(CoreError::Singular(
                        "a strategy row received zero budget; drop unused rows first",
                    ));
                }
                c.predict_query_variances(workload, *strategy, &group_sigma2)?
            }
            _ => unreachable!("Compiled::build pairs the variants"),
        };
        Ok(Plan {
            spec,
            budgeting,
            privacy,
            neighboring,
            schema_tag,
            solution,
            achieved_epsilon: achieved,
            predicted_variance,
            query_variances,
            compiled,
        })
    }

    /// Rebuilds a plan from shipped (deserialized) parts: recompiles the
    /// strategy operator from the spec, then revalidates and reuses the
    /// shipped budget solution — no Step-2 solve.
    pub(crate) fn from_shipped_parts(
        spec: WorkloadSpec,
        budgeting: Budgeting,
        privacy: PrivacyLevel,
        neighboring: Neighboring,
        schema_tag: u64,
        solution: BudgetSolution,
    ) -> Result<Plan, CoreError> {
        let spec = spec.normalized();
        let compiled = Compiled::build(&spec)?;
        // The shipped objective drives predicted_variance downstream, so a
        // tampered document must not smuggle optimistic accounting: it has
        // to equal `Σ_r s_r/η_r²` for the recompiled specs and shipped
        // budgets (up to rounding).
        if solution.group_budgets.len() == compiled.num_groups() {
            let expected = objective_value(compiled.group_specs(), &solution.group_budgets);
            if !solution.objective.is_finite()
                || (solution.objective - expected).abs() > 1e-6 * expected.abs().max(1e-12)
            {
                return Err(CoreError::InvalidPlan(
                    "shipped objective does not match the shipped budgets",
                ));
            }
        }
        Plan::finish(
            spec,
            budgeting,
            privacy,
            neighboring,
            schema_tag,
            compiled,
            solution,
        )
    }

    /// Re-solves this plan at another privacy level and/or budgeting mode,
    /// **reusing the compiled strategy operator** (cluster search,
    /// coefficient spaces, level structure) — the ε-sweep companion to
    /// [`PlanCache`]: one compile, many budget points.
    pub fn resolved_at(
        &self,
        privacy: PrivacyLevel,
        budgeting: Budgeting,
    ) -> Result<Plan, CoreError> {
        let compiled = Arc::clone(&self.compiled);
        let solution = compiled.solve_budgets(privacy, budgeting)?;
        Plan::finish_shared(
            self.spec.clone(),
            budgeting,
            privacy,
            self.neighboring,
            self.schema_tag,
            compiled,
            solution,
        )
    }

    /// The workload spec the plan answers.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The budget-allocation mode.
    pub fn budgeting(&self) -> Budgeting {
        self.budgeting
    }

    /// The privacy guarantee the plan was solved for.
    pub fn privacy(&self) -> PrivacyLevel {
        self.privacy
    }

    /// The neighbouring-database convention.
    pub fn neighboring(&self) -> Neighboring {
        self.neighboring
    }

    /// The solved per-group budgets `η_r` as produced by the Step-2
    /// optimizer, *before* the neighbouring sensitivity factor (releases
    /// divide by it, exactly as the legacy paths did).
    pub fn solution(&self) -> &BudgetSolution {
        &self.solution
    }

    /// The ε actually implied by the solved budgets (≤ the requested ε up
    /// to rounding, by the feasibility validation at compile time).
    pub fn achieved_epsilon(&self) -> f64 {
        self.achieved_epsilon
    }

    /// Predicted total output variance of the initial recovery `R₀` (the
    /// Step-2 objective times the mechanism constant). The GLS recovery of
    /// Step 3 can only improve on it.
    pub fn predicted_variance(&self) -> f64 {
        self.predicted_variance
    }

    /// Per-query variance predictions, in workload order: the initial
    /// recovery's per-marginal variances for marginal plans (they sum to
    /// [`Plan::predicted_variance`]), and the *exact* per-range GLS
    /// variances for range plans.
    pub fn query_variances(&self) -> &[f64] {
        &self.query_variances
    }

    /// The greedy clustering, when the plan uses
    /// [`StrategyKind::Cluster`].
    pub fn clustering(&self) -> Option<&Clustering> {
        match self.compiled() {
            Compiled::Marginals(c) => c.clustering.as_ref(),
            Compiled::Ranges(_) => None,
        }
    }

    /// Display label matching the paper's figure legends, e.g. `"F+"` for
    /// Fourier with optimal budgets or `"H"` for the uniform-budget tree.
    pub fn label(&self) -> String {
        match self.budgeting {
            Budgeting::Uniform => self.spec.strategy_label().to_string(),
            Budgeting::Optimal => format!("{}+", self.spec.strategy_label()),
        }
    }

    /// A stable 64-bit fingerprint of everything that identifies the plan
    /// (schema tag, workload, strategy, budgeting, privacy, neighbouring) —
    /// the hash of its [`PlanCache`] key.
    pub fn fingerprint(&self) -> u64 {
        plan_key(
            &self.spec,
            self.budgeting,
            self.privacy,
            self.neighboring,
            self.schema_tag,
        )
        .mix()
    }

    /// The schema tag the plan was compiled with (0 when untagged).
    pub(crate) fn schema_tag(&self) -> u64 {
        self.schema_tag
    }

    pub(crate) fn compiled(&self) -> &Compiled {
        &self.compiled
    }
}

/// One release produced by a [`Session`]: the answers plus the privacy
/// accounting shared by every release from the same plan.
#[derive(Debug, Clone)]
pub struct SessionRelease {
    /// The seed the release was drawn from (its sole source of randomness).
    pub seed: u64,
    /// The recovered, consistent answers.
    pub answers: Answers,
    /// Per-group noise budgets `η_r` actually used (after the neighbouring
    /// factor).
    pub group_budgets: Vec<f64>,
    /// Predicted total output variance of the initial recovery `R₀`.
    pub predicted_variance: f64,
    /// Achieved ε implied by the budgets.
    pub achieved_epsilon: f64,
    /// Method label, e.g. `"F+"`.
    pub label: String,
}

/// Workload answers, one variant per workload family.
#[derive(Debug, Clone)]
pub enum Answers {
    /// Consistent noisy marginal tables, workload order.
    Marginals(Vec<MarginalTable>),
    /// Noisy range counts, workload order.
    Ranges(Vec<f64>),
}

impl Answers {
    /// The marginal tables, when this is a marginal release.
    pub fn marginals(&self) -> Option<&[MarginalTable]> {
        match self {
            Answers::Marginals(m) => Some(m),
            Answers::Ranges(_) => None,
        }
    }

    /// The range counts, when this is a range release.
    pub fn ranges(&self) -> Option<&[f64]> {
        match self {
            Answers::Ranges(r) => Some(r),
            Answers::Marginals(_) => None,
        }
    }

    /// Consumes the marginal tables, when this is a marginal release.
    pub fn into_marginals(self) -> Option<Vec<MarginalTable>> {
        match self {
            Answers::Marginals(m) => Some(m),
            Answers::Ranges(_) => None,
        }
    }

    /// Consumes the range counts, when this is a range release.
    pub fn into_ranges(self) -> Option<Vec<f64>> {
        match self {
            Answers::Ranges(r) => Some(r),
            Answers::Marginals(_) => None,
        }
    }
}

impl SessionRelease {
    /// Bridges a marginal release to the legacy [`Release`] type (used by
    /// the CLI's JSON serializer); `None` for range releases.
    pub fn into_release(self) -> Option<Release> {
        let answers = self.answers.into_marginals()?;
        Some(Release {
            answers,
            group_budgets: self.group_budgets,
            predicted_variance: self.predicted_variance,
            achieved_epsilon: self.achieved_epsilon,
            label: self.label,
        })
    }
}

/// A plan bound to concrete data: the exact observations `z = S·x` are
/// computed once at bind time, after which every release only draws noise
/// and recovers — [`crate::strategy::ReleaseEngine::release_with_solution`]
/// is pure given (observations, budgets, seed), so batches parallelize
/// freely and reproduce bit-for-bit.
pub struct Session<'p> {
    plan: &'p Plan,
    observations: Vec<f64>,
}

impl<'p> Session<'p> {
    /// Binds a **marginal** plan to a contingency table.
    ///
    /// Fails with [`CoreError::InvalidPlan`] for range plans (use
    /// [`Session::bind_histogram`]) and with a shape error when the table's
    /// domain does not match the workload's.
    pub fn bind(plan: &'p Plan, table: &ContingencyTable) -> Result<Session<'p>, CoreError> {
        match plan.compiled() {
            Compiled::Marginals(c) => Ok(Session {
                plan,
                observations: c.observe(table)?,
            }),
            Compiled::Ranges(_) => Err(CoreError::InvalidPlan(
                "range plans bind to histograms; use Session::bind_histogram",
            )),
        }
    }

    /// Binds a **range** plan to a histogram over its 1-D domain.
    ///
    /// Fails with [`CoreError::InvalidPlan`] for marginal plans (use
    /// [`Session::bind`]) and with a shape error when the histogram length
    /// does not match the domain.
    pub fn bind_histogram(plan: &'p Plan, hist: &[f64]) -> Result<Session<'p>, CoreError> {
        match plan.compiled() {
            Compiled::Ranges(c) => Ok(Session {
                plan,
                observations: c.observe(hist)?,
            }),
            Compiled::Marginals(_) => Err(CoreError::InvalidPlan(
                "marginal plans bind to contingency tables; use Session::bind",
            )),
        }
    }

    /// The bound plan.
    pub fn plan(&self) -> &'p Plan {
        self.plan
    }

    /// Draws one release, deterministic in `seed`: the same (plan, data,
    /// seed) triple always reproduces the same bytes, regardless of thread
    /// count or batch position. The budget solution solved at plan-compile
    /// time is reused — no Step-2 solve happens here.
    pub fn release(&self, seed: u64) -> Result<SessionRelease, CoreError> {
        release_bound(self.plan, &self.observations, seed)
    }

    /// Draws one release per seed, fanned out with rayon. Each release
    /// seeds its own RNG, so the output is a pure function of the seed
    /// list — independent of batch size, ordering of other seeds, and
    /// thread count — and element `i` equals `self.release(seeds[i])`.
    ///
    /// The engine checks its per-release working buffers (noisy
    /// observations, substream seeds, budgets, weights, noise parameters)
    /// out of a shared scratch pool, so a batch of K releases allocates
    /// O(workers) scratch arenas rather than O(K) — only the returned
    /// answers themselves are freshly allocated.
    ///
    /// An empty seed list returns `Ok(vec![])`: no noise is drawn and no
    /// budget is consumed (the service layer likewise charges nothing for
    /// an empty batch).
    pub fn release_batch(&self, seeds: &[u64]) -> Result<Vec<SessionRelease>, CoreError> {
        seeds.par_iter().map(|&s| self.release(s)).collect()
    }
}

/// The one release path shared by [`Session`] and [`OwnedSession`]: pure in
/// (plan, observations, seed), so both session types are byte-identical per
/// seed by construction.
fn release_bound(
    plan: &Plan,
    observations: &[f64],
    seed: u64,
) -> Result<SessionRelease, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (answers, out_budgets, predicted, achieved) = match plan.compiled() {
        Compiled::Marginals(c) => {
            let out = c.engine.release_with_solution(
                observations,
                plan.privacy,
                &plan.solution,
                plan.neighboring,
                &mut rng,
            )?;
            (
                Answers::Marginals(out.answer),
                out.group_budgets,
                out.predicted_variance,
                out.achieved_epsilon,
            )
        }
        Compiled::Ranges(c) => {
            let out = c.engine.release_with_solution(
                observations,
                plan.privacy,
                &plan.solution,
                plan.neighboring,
                &mut rng,
            )?;
            (
                Answers::Ranges(out.answer),
                out.group_budgets,
                out.predicted_variance,
                out.achieved_epsilon,
            )
        }
    };
    Ok(SessionRelease {
        seed,
        answers,
        group_budgets: out_budgets,
        predicted_variance: predicted,
        achieved_epsilon: achieved,
        label: plan.label(),
    })
}

/// A [`Session`] that **owns** its plan through an [`Arc`] — the shape a
/// long-lived service needs: bound sessions can be stored in registries and
/// shared across worker threads without borrowing from a plan kept alive
/// elsewhere. Releases go through the exact same internal path as
/// [`Session`], so the two are byte-identical per (plan, data, seed).
pub struct OwnedSession {
    plan: Arc<Plan>,
    observations: Vec<f64>,
}

impl OwnedSession {
    /// Binds a **marginal** plan to a contingency table (the owning
    /// counterpart of [`Session::bind`]).
    pub fn bind(plan: Arc<Plan>, table: &ContingencyTable) -> Result<OwnedSession, CoreError> {
        match plan.compiled() {
            Compiled::Marginals(c) => {
                let observations = c.observe(table)?;
                Ok(OwnedSession { plan, observations })
            }
            Compiled::Ranges(_) => Err(CoreError::InvalidPlan(
                "range plans bind to histograms; use OwnedSession::bind_histogram",
            )),
        }
    }

    /// Binds a **range** plan to a histogram (the owning counterpart of
    /// [`Session::bind_histogram`]).
    pub fn bind_histogram(plan: Arc<Plan>, hist: &[f64]) -> Result<OwnedSession, CoreError> {
        match plan.compiled() {
            Compiled::Ranges(c) => {
                let observations = c.observe(hist)?;
                Ok(OwnedSession { plan, observations })
            }
            Compiled::Marginals(_) => Err(CoreError::InvalidPlan(
                "marginal plans bind to contingency tables; use OwnedSession::bind",
            )),
        }
    }

    /// The bound plan.
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// Draws one release; identical bytes to [`Session::release`] for the
    /// same (plan, data, seed).
    pub fn release(&self, seed: u64) -> Result<SessionRelease, CoreError> {
        release_bound(&self.plan, &self.observations, seed)
    }

    /// Draws one release per seed, fanned out with rayon; element `i`
    /// equals `self.release(seeds[i])`. An empty seed list returns
    /// `Ok(vec![])` without drawing any noise.
    pub fn release_batch(&self, seeds: &[u64]) -> Result<Vec<SessionRelease>, CoreError> {
        seeds.par_iter().map(|&s| self.release(s)).collect()
    }
}

/// A session that maintains its observation vector **incrementally** under
/// record-level inserts and deletes — the streaming counterpart of
/// [`OwnedSession`].
///
/// The release `z = S·x` is linear in the data vector `x` (the structural
/// fact the whole paper builds on), so adding or removing one tuple at cell
/// `j` shifts the observations by the sparse column `±S[·, j]`:
///
/// * marginal strategies: one entry per observed marginal (identity /
///   workload / cluster) or `|support|` signed entries of magnitude
///   `2^{−d/2}` (Fourier);
/// * range strategies: one entry (identity), one per tree level
///   (hierarchical), at most `2·log₂ n + 1` Haar coefficients (wavelet), or
///   the nonzeros of the sketch column.
///
/// [`StreamingSession::ingest`] is therefore O(|column|) — never O(2^d) —
/// where a fresh [`Session::bind`] re-aggregates the full domain. Releases
/// go through the exact same pure path as [`Session`]/[`OwnedSession`], so
/// a release from a streamed-to session is byte-identical to one from a
/// session freshly bound to the same data (up to float accumulation; see
/// [`StreamingSession::rebase`]).
///
/// A **sliding window** variant ([`StreamingSession::with_window`]) keeps a
/// ring of per-bucket delta logs: [`StreamingSession::advance`] closes the
/// current bucket and retracts the expiring one, so the session always
/// reflects the currently-filling bucket plus the last `buckets` completed
/// buckets of the stream — never anything older.
///
/// Repeated float adds drift; [`StreamingSession::rebase`] re-observes from
/// the maintained count vector, restoring bitwise agreement with a fresh
/// bind at O(domain) cost — amortize it over long edit scripts.
///
/// ```
/// use dp_core::api::{PlanBuilder, StreamingSession};
/// use dp_core::prelude::*;
/// use std::sync::Arc;
///
/// let schema = Schema::binary(4).unwrap();
/// let workload = Workload::all_k_way(&schema, 2).unwrap();
/// let plan = Arc::new(
///     PlanBuilder::marginals(workload, StrategyKind::Fourier)
///         .compile()
///         .unwrap(),
/// );
/// let mut stream = StreamingSession::empty(plan).unwrap();
/// stream.ingest(3).unwrap(); // O(|support|), not O(2^d)
/// stream.ingest(5).unwrap();
/// stream.retract(3).unwrap();
/// let release = stream.release(7).unwrap();
/// assert_eq!(release.seed, 7);
/// ```
pub struct StreamingSession {
    plan: Arc<Plan>,
    observations: Vec<f64>,
    /// The maintained data vector (contingency counts or histogram) —
    /// backs [`StreamingSession::rebase`] and the negative-count guard.
    counts: Vec<f64>,
    window: Option<SlidingWindow>,
}

/// Ring of per-bucket delta logs for the sliding-window variant.
struct SlidingWindow {
    /// Oldest bucket first; the last entry is the bucket currently filling.
    buckets: std::collections::VecDeque<Vec<(u64, f64)>>,
    /// Number of buckets the window spans.
    capacity: usize,
}

impl StreamingSession {
    /// Starts a streaming session over an **empty** dataset — the usual
    /// entry point for a stream that begins from nothing.
    pub fn empty(plan: Arc<Plan>) -> Result<StreamingSession, CoreError> {
        let n = match plan.spec() {
            WorkloadSpec::Marginals { workload, .. } => 1usize << workload.domain_bits(),
            WorkloadSpec::Ranges { workload, .. } => workload.domain(),
        };
        StreamingSession::from_counts(plan, vec![0.0; n])
    }

    /// Starts from an existing contingency table (marginal plans): one full
    /// `observe`, after which updates are incremental.
    pub fn bind(plan: Arc<Plan>, table: &ContingencyTable) -> Result<StreamingSession, CoreError> {
        if matches!(plan.compiled(), Compiled::Ranges(_)) {
            return Err(CoreError::InvalidPlan(
                "range plans bind to histograms; use StreamingSession::bind_histogram",
            ));
        }
        StreamingSession::from_counts(plan, table.counts().to_vec())
    }

    /// Starts from an existing histogram (range plans).
    pub fn bind_histogram(plan: Arc<Plan>, hist: &[f64]) -> Result<StreamingSession, CoreError> {
        if matches!(plan.compiled(), Compiled::Marginals(_)) {
            return Err(CoreError::InvalidPlan(
                "marginal plans bind to contingency tables; use StreamingSession::bind",
            ));
        }
        StreamingSession::from_counts(plan, hist.to_vec())
    }

    fn from_counts(plan: Arc<Plan>, counts: Vec<f64>) -> Result<StreamingSession, CoreError> {
        let observations = observe_counts(&plan, &counts)?;
        Ok(StreamingSession {
            plan,
            observations,
            counts,
            window: None,
        })
    }

    /// Converts this session into a sliding-window session spanning
    /// `buckets` buckets (e.g. 60 one-minute buckets for a one-hour
    /// window). Subsequent ingests land in the current bucket;
    /// [`StreamingSession::advance`] rotates the ring.
    pub fn with_window(mut self, buckets: usize) -> StreamingSession {
        assert!(buckets > 0, "a sliding window needs at least one bucket");
        let mut ring = std::collections::VecDeque::with_capacity(buckets + 1);
        ring.push_back(Vec::new());
        self.window = Some(SlidingWindow {
            buckets: ring,
            capacity: buckets,
        });
        self
    }

    /// The bound plan.
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// The incrementally maintained observation vector `z = S·x` (exposed
    /// for the delta-vs-full-observe equivalence tests).
    pub fn observations(&self) -> &[f64] {
        &self.observations
    }

    /// The maintained data vector `x`.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Inserts one tuple at linearized cell `cell`: `x_cell += 1`,
    /// `z += S[·, cell]`.
    pub fn ingest(&mut self, cell: u64) -> Result<(), CoreError> {
        self.ingest_count(cell, 1.0)
    }

    /// Deletes one tuple at cell `cell`, refusing to drive its count
    /// negative (retracting a tuple that was never inserted).
    pub fn retract(&mut self, cell: u64) -> Result<(), CoreError> {
        self.ingest_count(cell, -1.0)
    }

    /// Adds `delta` tuples at cell `cell` (negative `delta` retracts).
    /// O(|S[·, cell]|). Errors leave the session unchanged.
    pub fn ingest_count(&mut self, cell: u64, delta: f64) -> Result<(), CoreError> {
        if cell >= self.counts.len() as u64 {
            return Err(CoreError::Shape {
                context: "streaming delta cell",
                expected: self.counts.len(),
                actual: cell as usize,
            });
        }
        let next = self.counts[cell as usize] + delta;
        if next < 0.0 {
            return Err(CoreError::NegativeCount { cell, count: next });
        }
        self.plan
            .compiled()
            .apply_delta(&mut self.observations, cell, delta)?;
        self.counts[cell as usize] = next;
        if let Some(w) = &mut self.window {
            w.buckets
                .back_mut()
                .expect("window always has a current bucket")
                .push((cell, delta));
        }
        Ok(())
    }

    /// Closes the current window bucket and opens a new one; once more than
    /// `buckets` buckets exist, the oldest is expired — every delta it
    /// logged is retracted, so the session thereafter reflects exactly the
    /// surviving buckets. Errors unless this is a windowed session.
    pub fn advance(&mut self) -> Result<(), CoreError> {
        let w = self.window.as_mut().ok_or(CoreError::InvalidPlan(
            "advance() needs a sliding window; build with StreamingSession::with_window",
        ))?;
        w.buckets.push_back(Vec::new());
        if w.buckets.len() > w.capacity + 1 {
            let expired = w.buckets.pop_front().expect("ring is non-empty");
            for (cell, delta) in expired {
                self.plan
                    .compiled()
                    .apply_delta(&mut self.observations, cell, -delta)?;
                // Expiry retracts exactly what an earlier ingest logged, so
                // any negativity is float round-off, not a logic error —
                // clamp instead of failing mid-rotation.
                let c = &mut self.counts[cell as usize];
                *c = (*c - delta).max(0.0);
            }
        }
        Ok(())
    }

    /// Re-observes `z = S·x` from the maintained counts, discarding the
    /// accumulated float drift of the delta path: immediately after
    /// `rebase()` the observations are **bitwise identical** to a fresh
    /// [`Session::bind`] of the same data. O(domain) — call it every few
    /// thousand edits, not per edit.
    pub fn rebase(&mut self) -> Result<(), CoreError> {
        self.observations = observe_counts(&self.plan, &self.counts)?;
        Ok(())
    }

    /// Draws one release from the current observations; deterministic in
    /// `seed` and byte-identical to [`Session::release`] over the same
    /// (plan, data, seed) when the observations agree bitwise.
    pub fn release(&self, seed: u64) -> Result<SessionRelease, CoreError> {
        release_bound(&self.plan, &self.observations, seed)
    }

    /// Draws one release per seed (rayon fan-out); element `i` equals
    /// `self.release(seeds[i])`. Empty seed list → `Ok(vec![])`.
    pub fn release_batch(&self, seeds: &[u64]) -> Result<Vec<SessionRelease>, CoreError> {
        seeds.par_iter().map(|&s| self.release(s)).collect()
    }
}

/// Full observation of a raw count vector under either workload family —
/// the bind/rebase path of [`StreamingSession`].
fn observe_counts(plan: &Plan, counts: &[f64]) -> Result<Vec<f64>, CoreError> {
    match plan.compiled() {
        Compiled::Marginals(c) => c.observe(&ContingencyTable::from_counts(counts.to_vec())),
        Compiled::Ranges(c) => c.observe(counts),
    }
}

/// Canonical cache key: the `u64` encoding of (schema tag, spec,
/// budgeting, privacy, neighbouring).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey(Vec<u64>);

/// Encodes a plan's identity into its cache key — shared by
/// [`PlanBuilder::key`] and [`Plan::fingerprint`] so neither clones the
/// workload to compute it.
fn plan_key(
    spec: &WorkloadSpec,
    budgeting: Budgeting,
    privacy: PrivacyLevel,
    neighboring: Neighboring,
    schema_tag: u64,
) -> PlanKey {
    let mut words = vec![schema_tag];
    spec.key_words(&mut words);
    words.push(match budgeting {
        Budgeting::Uniform => 0,
        Budgeting::Optimal => 1,
    });
    match privacy {
        PrivacyLevel::Pure { epsilon } => words.extend([0, epsilon.to_bits()]),
        PrivacyLevel::Approx { epsilon, delta } => {
            words.extend([1, epsilon.to_bits(), delta.to_bits()])
        }
    }
    words.push(match neighboring {
        Neighboring::AddRemove => 0,
        Neighboring::Replace => 1,
    });
    PlanKey(words)
}

impl PlanKey {
    /// FNV-mixes the key words into one stable `u64`.
    fn mix(&self) -> u64 {
        self.0.iter().fold(0xcbf29ce484222325u64, |h, &w| {
            (h ^ w).wrapping_mul(0x100000001b3)
        })
    }
}

/// A thread-safe memo of compiled plans keyed by (schema fingerprint,
/// workload, strategy, budgeting, privacy, neighbouring). Repeated requests
/// for the same shape skip strategy compilation *and* the Step-2 budget
/// solve entirely; `K` releases over one cached plan perform exactly one
/// solve (asserted by the integration tests).
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns the cached plan for the builder's key, compiling and
    /// inserting it on first request.
    pub fn get_or_compile(&self, builder: PlanBuilder) -> Result<Arc<Plan>, CoreError> {
        let key = builder.key();
        if let Some(plan) = self
            .plans
            .lock()
            .expect("plan cache lock poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside the lock: compilation can be expensive (cluster
        // search) and must not serialize unrelated requests. A concurrent
        // duplicate compile is possible and benign — first insert wins.
        let plan = Arc::new(builder.compile()?);
        let mut map = self.plans.lock().expect("plan cache lock poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(plan)))
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache lock poisoned").len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that compiled a new plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached plan (statistics are kept).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> ContingencyTable {
        let mut counts = vec![0.0; 16];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = ((i * 7) % 13) as f64;
        }
        ContingencyTable::from_counts(counts)
    }

    fn workload2() -> Workload {
        let schema = Schema::binary(4).unwrap();
        Workload::all_k_way(&schema, 2).unwrap()
    }

    #[test]
    fn plan_compiles_without_data_and_sessions_release() {
        for strategy in [
            StrategyKind::Identity,
            StrategyKind::Workload,
            StrategyKind::Fourier,
            StrategyKind::Cluster,
        ] {
            let plan = PlanBuilder::marginals(workload2(), strategy)
                .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
                .compile()
                .unwrap();
            assert!(plan.achieved_epsilon() <= 1.0 + 1e-9);
            assert_eq!(plan.query_variances().len(), workload2().len());
            let table = small_table();
            let session = Session::bind(&plan, &table).unwrap();
            let r = session.release(7).unwrap();
            assert_eq!(r.answers.marginals().unwrap().len(), workload2().len());
            assert_eq!(r.label, plan.label());
        }
    }

    #[test]
    fn marginal_query_variances_sum_to_predicted_total() {
        for strategy in [
            StrategyKind::Identity,
            StrategyKind::Workload,
            StrategyKind::Fourier,
            StrategyKind::Cluster,
        ] {
            for budgeting in [Budgeting::Uniform, Budgeting::Optimal] {
                let plan = PlanBuilder::marginals(workload2(), strategy)
                    .budgeting(budgeting)
                    .privacy(PrivacyLevel::Pure { epsilon: 0.4 })
                    .compile()
                    .unwrap();
                let sum: f64 = plan.query_variances().iter().sum();
                assert!(
                    (sum - plan.predicted_variance()).abs()
                        < 1e-9 * plan.predicted_variance().max(1.0),
                    "{strategy:?}/{budgeting:?}: {sum} vs {}",
                    plan.predicted_variance()
                );
            }
        }
    }

    #[test]
    fn range_plans_support_approximate_privacy() {
        let w = RangeWorkload::all_prefixes(32).unwrap();
        for strategy in [
            RangeStrategy::Identity,
            RangeStrategy::Hierarchical,
            RangeStrategy::Wavelet,
        ] {
            let plan = PlanBuilder::ranges(w.clone(), strategy)
                .privacy(PrivacyLevel::Approx {
                    epsilon: 0.8,
                    delta: 1e-6,
                })
                .compile()
                .unwrap();
            assert!(plan.achieved_epsilon() <= 0.8 + 1e-9);
            let hist: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64).collect();
            let session = Session::bind_histogram(&plan, &hist).unwrap();
            let r = session.release(3).unwrap();
            assert_eq!(r.answers.ranges().unwrap().len(), w.ranges().len());
        }
    }

    #[test]
    fn binding_the_wrong_data_kind_is_rejected() {
        let marginal_plan = PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
            .compile()
            .unwrap();
        assert!(matches!(
            Session::bind_histogram(&marginal_plan, &[0.0; 16]),
            Err(CoreError::InvalidPlan(_))
        ));
        let range_plan = PlanBuilder::ranges(
            RangeWorkload::all_prefixes(16).unwrap(),
            RangeStrategy::Wavelet,
        )
        .compile()
        .unwrap();
        assert!(matches!(
            Session::bind(&range_plan, &small_table()),
            Err(CoreError::InvalidPlan(_))
        ));
        // Shape mismatches still surface as shape errors.
        assert!(matches!(
            Session::bind_histogram(&range_plan, &[0.0; 8]),
            Err(CoreError::Shape { .. })
        ));
    }

    #[test]
    fn cache_hits_skip_compilation() {
        let cache = PlanCache::new();
        let build = || {
            PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
                .privacy(PrivacyLevel::Pure { epsilon: 0.5 })
        };
        let a = cache.get_or_compile(build()).unwrap();
        let b = cache.get_or_compile(build()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // A different ε is a different plan.
        let c = cache
            .get_or_compile(build().privacy(PrivacyLevel::Pure { epsilon: 0.25 }))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cluster_parallel_flag_does_not_split_cache_entries_or_fingerprints() {
        // The fan-out toggle is an execution hint with provably identical
        // output, so fast and serial compiles must share one cache slot
        // and one fingerprint — while the faithful/search toggles (which
        // select a different measured code path) stay distinct keys.
        let cache = PlanCache::new();
        let build = |config: ClusterConfig| {
            PlanBuilder::marginals(workload2(), StrategyKind::Cluster).cluster_config(config)
        };
        let fast = cache.get_or_compile(build(ClusterConfig::FAST)).unwrap();
        let serial = cache
            .get_or_compile(build(ClusterConfig::FAST.serial()))
            .unwrap();
        assert!(Arc::ptr_eq(&fast, &serial));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            fast.fingerprint(),
            build(ClusterConfig::FAST.serial())
                .compile()
                .unwrap()
                .fingerprint()
        );
        let faithful = cache.get_or_compile(build(ClusterConfig::PAPER)).unwrap();
        assert!(!Arc::ptr_eq(&fast, &faithful));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_distinguishes_schemas_with_identical_bit_layouts() {
        let s1 = Schema::binary(4).unwrap();
        let s2 = Schema::new(vec![
            crate::schema::Attribute::new("age", 4).unwrap(),
            crate::schema::Attribute::new("sex", 2).unwrap(),
            crate::schema::Attribute::new("flag", 2).unwrap(),
        ])
        .unwrap();
        assert_eq!(s1.domain_bits(), s2.domain_bits());
        assert_ne!(schema_fingerprint(&s1), schema_fingerprint(&s2));
        let cache = PlanCache::new();
        let w = workload2();
        let a = cache
            .get_or_compile(
                PlanBuilder::marginals(w.clone(), StrategyKind::Fourier).for_schema(&s1),
            )
            .unwrap();
        let b = cache
            .get_or_compile(PlanBuilder::marginals(w, StrategyKind::Fourier).for_schema(&s2))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn batch_elements_equal_single_releases() {
        let plan = PlanBuilder::marginals(workload2(), StrategyKind::Workload)
            .compile()
            .unwrap();
        let table = small_table();
        let session = Session::bind(&plan, &table).unwrap();
        let seeds = [5u64, 6, 7, 8, 9, 10, 11, 12];
        let batch = session.release_batch(&seeds).unwrap();
        for (r, &seed) in batch.iter().zip(&seeds) {
            let single = session.release(seed).unwrap();
            assert_eq!(r.seed, seed);
            let (a, b) = (r.answers.marginals().unwrap(), single.answers.marginals());
            for (ma, mb) in a.iter().zip(b.unwrap()) {
                assert_eq!(ma.values(), mb.values());
            }
        }
    }

    #[test]
    fn resolved_at_matches_a_fresh_compile() {
        // Re-solving over the shared compiled operator must be
        // indistinguishable from compiling from scratch — same budgets,
        // same bytes per seed — while skipping the strategy build.
        let base = PlanBuilder::marginals(workload2(), StrategyKind::Cluster)
            .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
            .compile()
            .unwrap();
        let resolved = base
            .resolved_at(PrivacyLevel::Pure { epsilon: 0.25 }, Budgeting::Uniform)
            .unwrap();
        let fresh = PlanBuilder::marginals(workload2(), StrategyKind::Cluster)
            .budgeting(Budgeting::Uniform)
            .privacy(PrivacyLevel::Pure { epsilon: 0.25 })
            .compile()
            .unwrap();
        assert_eq!(resolved, fresh);
        assert_eq!(resolved.query_variances(), fresh.query_variances());
        let table = small_table();
        let a = Session::bind(&resolved, &table)
            .unwrap()
            .release(3)
            .unwrap();
        let b = Session::bind(&fresh, &table).unwrap().release(3).unwrap();
        for (x, y) in a
            .answers
            .marginals()
            .unwrap()
            .iter()
            .zip(b.answers.marginals().unwrap())
        {
            assert_eq!(x.values(), y.values());
        }
        // The compiled operator really is shared, not rebuilt.
        assert!(Arc::ptr_eq(&base.compiled, &resolved.compiled));
    }

    #[test]
    fn owned_sessions_match_borrowed_sessions_byte_for_byte() {
        let plan = Arc::new(
            PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
                .compile()
                .unwrap(),
        );
        let table = small_table();
        let borrowed = Session::bind(&plan, &table).unwrap();
        let owned = OwnedSession::bind(Arc::clone(&plan), &table).unwrap();
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = borrowed.release(seed).unwrap();
            let b = owned.release(seed).unwrap();
            for (ma, mb) in a
                .answers
                .marginals()
                .unwrap()
                .iter()
                .zip(b.answers.marginals().unwrap())
            {
                assert_eq!(ma.values(), mb.values());
            }
            assert_eq!(a.group_budgets, b.group_budgets);
        }
        // Wrong-kind binds are rejected like the borrowed session's.
        assert!(matches!(
            OwnedSession::bind_histogram(plan, &[0.0; 16]),
            Err(CoreError::InvalidPlan(_))
        ));
        let range_plan = Arc::new(
            PlanBuilder::ranges(
                RangeWorkload::all_prefixes(16).unwrap(),
                RangeStrategy::Wavelet,
            )
            .compile()
            .unwrap(),
        );
        assert!(matches!(
            OwnedSession::bind(Arc::clone(&range_plan), &small_table()),
            Err(CoreError::InvalidPlan(_))
        ));
        let hist: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let owned = OwnedSession::bind_histogram(range_plan, &hist).unwrap();
        let batch = owned.release_batch(&[3, 4]).unwrap();
        assert_eq!(
            batch[0].answers.ranges().unwrap(),
            owned.release(3).unwrap().answers.ranges().unwrap()
        );
    }

    #[test]
    fn empty_seed_batches_release_nothing() {
        let plan = PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
            .compile()
            .unwrap();
        let table = small_table();
        let session = Session::bind(&plan, &table).unwrap();
        assert!(session.release_batch(&[]).unwrap().is_empty());
        let owned = OwnedSession::bind(Arc::new(plan), &table).unwrap();
        assert!(owned.release_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn streaming_ingest_tracks_a_fresh_bind() {
        let plan = Arc::new(
            PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
                .compile()
                .unwrap(),
        );
        let mut stream = StreamingSession::empty(Arc::clone(&plan)).unwrap();
        let cells = [3u64, 5, 5, 12, 0, 15];
        for &c in &cells {
            stream.ingest(c).unwrap();
        }
        stream.retract(5).unwrap();
        let mut table = ContingencyTable::zeros(4);
        for &c in &[3u64, 5, 12, 0, 15] {
            table.add_count(c, 1.0).unwrap();
        }
        let fresh = Session::bind(&plan, &table).unwrap();
        // Observations agree to float accumulation; after rebase, bitwise.
        stream.rebase().unwrap();
        let direct = match plan.compiled() {
            Compiled::Marginals(c) => c.observe(&table).unwrap(),
            Compiled::Ranges(_) => unreachable!(),
        };
        assert_eq!(stream.observations(), direct.as_slice());
        // ...and the releases are byte-identical.
        let a = stream.release(9).unwrap();
        let b = fresh.release(9).unwrap();
        for (ma, mb) in a
            .answers
            .marginals()
            .unwrap()
            .iter()
            .zip(b.answers.marginals().unwrap())
        {
            assert_eq!(ma.values(), mb.values());
        }
    }

    #[test]
    fn streaming_guards_cell_range_and_negative_counts() {
        let plan = Arc::new(
            PlanBuilder::marginals(workload2(), StrategyKind::Workload)
                .compile()
                .unwrap(),
        );
        let mut stream = StreamingSession::empty(plan).unwrap();
        assert!(matches!(stream.ingest(16), Err(CoreError::Shape { .. })));
        assert!(matches!(
            stream.retract(2),
            Err(CoreError::NegativeCount { cell: 2, .. })
        ));
        // Failed edits leave the session untouched.
        assert!(stream.observations().iter().all(|&z| z == 0.0));
        assert!(matches!(stream.advance(), Err(CoreError::InvalidPlan(_))));
    }

    #[test]
    fn streaming_window_expiry_matches_direct_bind() {
        let plan = Arc::new(
            PlanBuilder::ranges(
                RangeWorkload::all_prefixes(16).unwrap(),
                RangeStrategy::Hierarchical,
            )
            .compile()
            .unwrap(),
        );
        let mut stream = StreamingSession::empty(Arc::clone(&plan))
            .unwrap()
            .with_window(2);
        // Bucket 0 (will expire), bucket 1 and 2 (survive).
        for c in [1u64, 2, 3] {
            stream.ingest(c).unwrap();
        }
        stream.advance().unwrap();
        for c in [4u64, 4] {
            stream.ingest(c).unwrap();
        }
        stream.advance().unwrap();
        stream.ingest(9).unwrap();
        stream.advance().unwrap(); // expires bucket 0
        let mut hist = vec![0.0; 16];
        for c in [4usize, 4, 9] {
            hist[c] += 1.0;
        }
        assert_eq!(stream.counts(), hist.as_slice());
        let direct = Session::bind_histogram(&plan, &hist).unwrap();
        let (a, b) = (stream.release(5).unwrap(), direct.release(5).unwrap());
        let (ra, rb) = (a.answers.ranges().unwrap(), b.answers.ranges().unwrap());
        for (x, y) in ra.iter().zip(rb) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn infeasible_privacy_is_rejected_at_compile_time() {
        assert!(PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
            .privacy(PrivacyLevel::Pure { epsilon: 0.0 })
            .compile()
            .is_err());
        assert!(PlanBuilder::marginals(workload2(), StrategyKind::Fourier)
            .privacy(PrivacyLevel::Approx {
                epsilon: 1.0,
                delta: 2.0,
            })
            .compile()
            .is_err());
    }
}
