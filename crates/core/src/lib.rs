//! # datacube-dp core
//!
//! Differentially private release of datacubes, contingency tables and
//! marginal-query workloads with **optimal non-uniform noise budgets**, a
//! from-scratch reproduction of
//!
//! > G. Cormode, C. M. Procopiuc, D. Srivastava, G. Yaroslavtsev.
//! > *Accurate and Efficient Private Release of Datacubes and Contingency
//! > Tables.* ICDE 2013.
//!
//! ## The framework (paper Figure 3)
//!
//! 1. **Strategy** — choose a strategy matrix `S` and observe `z = Sx + ν`.
//!    Supported strategies: identity/base counts (`I`), the workload itself
//!    (`S = Q`), the Fourier/Hadamard coefficients (`F`), the greedy
//!    cluster-of-marginals strategy of Ding et al. (`C`), plus hierarchical
//!    and wavelet strategies for range workloads.
//! 2. **Budgets** — split the privacy budget ε *non-uniformly* across the
//!    strategy rows using the closed-form grouped optimizer (Section 3.1 of
//!    the paper), implemented in `dp-opt`.
//! 3. **Recovery** — recompute the recovery matrix for the chosen budgets
//!    via generalized least squares (Section 3.2), carried out in
//!    Fourier-coefficient space where the normal equations are diagonal
//!    (Section 4.3), which simultaneously makes the answers *consistent*.
//!
//! ## Quick start
//!
//! Plans are **data-independent**: compile once, bind to data, release
//! many (each release deterministic in its seed).
//!
//! ```
//! use dp_core::prelude::*;
//!
//! // 4 binary attributes, a handful of records.
//! let schema = Schema::binary(4).unwrap();
//! let records = vec![vec![0,1,0,1], vec![1,1,0,0], vec![0,1,1,1]];
//! let table = ContingencyTable::from_records(&schema, &records).unwrap();
//!
//! // Phase 1 (no data): all 2-way marginals, Fourier strategy, optimal
//! // non-uniform budgets at ε = 1.
//! let workload = Workload::all_k_way(&schema, 2).unwrap();
//! let plan = PlanBuilder::marginals(workload.clone(), StrategyKind::Fourier)
//!     .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
//!     .compile()
//!     .unwrap();
//!
//! // Phase 2: bind the table and draw a batch of releases.
//! let session = Session::bind(&plan, &table).unwrap();
//! let releases = session.release_batch(&[7, 8, 9]).unwrap();
//! assert_eq!(releases[0].answers.marginals().unwrap().len(), workload.len());
//! ```

pub mod analysis;
pub mod api;
pub mod cluster;
pub mod consistency;
pub mod example;
pub mod fourier;
pub mod framework;
pub mod grouping;
pub mod marginal;
pub mod mask;
pub mod metrics;
pub mod postprocess;
pub mod range;
pub mod release;
pub mod schema;
pub mod serde_impls;
pub mod strategy;
pub mod table;
pub mod workload;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use crate::api::{
        Answers, OwnedSession, Plan, PlanBuilder, PlanCache, Session, SessionRelease,
        StreamingSession, WorkloadSpec,
    };
    pub use crate::cluster::{CentroidSearch, ClusterConfig};
    pub use crate::marginal::MarginalTable;
    pub use crate::mask::AttrMask;
    pub use crate::metrics::{average_absolute_error, average_relative_error};
    pub use crate::range::{RangeStrategy, RangeWorkload};
    #[allow(deprecated)] // kept so legacy callers migrate on their own schedule
    pub use crate::release::ReleasePlanner;
    pub use crate::release::{Budgeting, Release, StrategyKind};
    pub use crate::schema::{Attribute, Schema};
    pub use crate::strategy::{
        EngineRelease, NoiseParams, ReleaseEngine, ReleaseScratch, StrategyOperator,
    };
    pub use crate::table::ContingencyTable;
    pub use crate::workload::Workload;
    pub use dp_mech::{Neighboring, PrivacyLevel};
}

pub use crate::api::{
    Answers, OwnedSession, Plan, PlanBuilder, PlanCache, Session, SessionRelease, StreamingSession,
    WorkloadSpec,
};
pub use crate::cluster::{CentroidSearch, ClusterConfig};
pub use crate::mask::AttrMask;
#[allow(deprecated)] // kept so legacy callers migrate on their own schedule
pub use crate::release::ReleasePlanner;
pub use crate::release::{Budgeting, Release, StrategyKind};
pub use crate::schema::Schema;
pub use crate::table::ContingencyTable;
pub use crate::workload::Workload;

/// Errors surfaced by the core framework.
#[derive(Debug)]
pub enum CoreError {
    /// A vector/matrix had the wrong size.
    Shape {
        /// Operation that failed.
        context: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A Fourier coefficient was requested outside the support.
    CoefficientNotInSupport(mask::AttrMask),
    /// A linear system was singular where it must not be.
    Singular(&'static str),
    /// Underlying linear-algebra failure.
    Linalg(dp_linalg::LinalgError),
    /// Underlying optimizer failure.
    Opt(dp_opt::OptError),
    /// Underlying mechanism failure.
    Mech(dp_mech::MechError),
    /// Workload-level failure.
    Workload(workload::WorkloadError),
    /// The computed budgets violate the privacy constraint — indicates an
    /// internal bug; surfaced rather than silently releasing.
    InfeasibleBudgets {
        /// The ε actually implied by the budgets.
        achieved: f64,
        /// The ε that was requested.
        requested: f64,
    },
    /// A [`api::Plan`] was used with the wrong kind of data or document.
    InvalidPlan(&'static str),
    /// A retraction would drive a count below zero — the delta stream and
    /// the table disagree about what was ever inserted.
    NegativeCount {
        /// Linearized domain cell of the offending retraction.
        cell: u64,
        /// The (negative) count the retraction would have produced.
        count: f64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Shape {
                context,
                expected,
                actual,
            } => write!(f, "{context}: expected length {expected}, got {actual}"),
            CoreError::CoefficientNotInSupport(m) => {
                write!(f, "Fourier coefficient {m} not in the support")
            }
            CoreError::Singular(msg) => write!(f, "singular system: {msg}"),
            CoreError::Linalg(e) => write!(f, "linear algebra: {e}"),
            CoreError::Opt(e) => write!(f, "optimizer: {e}"),
            CoreError::Mech(e) => write!(f, "mechanism: {e}"),
            CoreError::Workload(e) => write!(f, "workload: {e}"),
            CoreError::InfeasibleBudgets {
                achieved,
                requested,
            } => write!(
                f,
                "computed budgets achieve ε = {achieved} > requested {requested}"
            ),
            CoreError::InvalidPlan(msg) => write!(f, "invalid plan use: {msg}"),
            CoreError::NegativeCount { cell, count } => write!(
                f,
                "retraction at cell {cell} would drive its count to {count} < 0"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<dp_linalg::LinalgError> for CoreError {
    fn from(e: dp_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<dp_opt::OptError> for CoreError {
    fn from(e: dp_opt::OptError) -> Self {
        CoreError::Opt(e)
    }
}

impl From<dp_mech::MechError> for CoreError {
    fn from(e: dp_mech::MechError) -> Self {
        CoreError::Mech(e)
    }
}

impl From<workload::WorkloadError> for CoreError {
    fn from(e: workload::WorkloadError) -> Self {
        CoreError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_all_variants() {
        let errors: Vec<CoreError> = vec![
            CoreError::Shape {
                context: "x",
                expected: 1,
                actual: 2,
            },
            CoreError::CoefficientNotInSupport(mask::AttrMask(0b1)),
            CoreError::Singular("s"),
            CoreError::Linalg(dp_linalg::LinalgError::NotPositiveDefinite { pivot: 0 }),
            CoreError::Opt(dp_opt::OptError::BadInput("b".into())),
            CoreError::Mech(dp_mech::MechError::NonPositiveBudget(0.0)),
            CoreError::Workload(workload::WorkloadError::Empty),
            CoreError::InfeasibleBudgets {
                achieved: 2.0,
                requested: 1.0,
            },
            CoreError::InvalidPlan("p"),
            CoreError::NegativeCount {
                cell: 3,
                count: -1.0,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
