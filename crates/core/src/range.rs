//! Range-query workloads and the hierarchical / wavelet strategies.
//!
//! Section 3.1 of the paper lists hierarchical structures \[14\] and the Haar
//! wavelet \[23\] among the groupable strategies its budget optimizer
//! improves: a binary tree over `x` groups rows by level (grouping number
//! `⌈log₂N⌉ + 1` counting the leaf level), and the 1-D Haar matrix groups
//! by resolution level. This module instantiates the framework for interval
//! (range-count) workloads over a 1-D domain, demonstrating that the
//! pipeline is not marginal-specific.
//!
//! Since the [`crate::strategy`] refactor the module contains **no noise or
//! recovery loop of its own**: planning derives the group structure and
//! variance predictions (via the dense [`crate::framework`] oracle, which is
//! fine at 1-D planning sizes), while every release runs through the shared
//! [`ReleaseEngine`] — observations `z = S·x` and the GLS recovery are
//! matrix-free [`LinearOperator`] applications (tree sums, Haar transforms,
//! CSR products) with conjugate gradients on the weighted normal equations.

use crate::framework::{gls_recovery, output_variances, Decomposition};
use crate::grouping::{detect_grouping, Grouping};
use crate::strategy::{Budgeting, ReleaseEngine, StrategyOperator};
use crate::CoreError;
use dp_linalg::{
    CgOptions, CsrMatrix, HaarOperator, HierarchicalOperator, IdentityOperator, LinearOperator,
    Matrix,
};
use dp_mech::{LaplaceMechanism, Neighboring, NoiseMechanism, PrivacyLevel};
use dp_opt::budget::{BudgetSolution, GroupSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A workload of half-open interval counts `[lo, hi)` over domain `[0, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeWorkload {
    n: usize,
    ranges: Vec<(usize, usize)>,
}

impl RangeWorkload {
    /// Validates and builds a range workload.
    pub fn new(n: usize, ranges: Vec<(usize, usize)>) -> Result<Self, CoreError> {
        if !n.is_power_of_two() {
            return Err(CoreError::Singular("range domain must be a power of two"));
        }
        for &(lo, hi) in &ranges {
            if lo >= hi || hi > n {
                return Err(CoreError::Shape {
                    context: "range bounds",
                    expected: n,
                    actual: hi,
                });
            }
        }
        if ranges.is_empty() {
            return Err(CoreError::Singular("range workload is empty"));
        }
        Ok(RangeWorkload { n, ranges })
    }

    /// All `n(n+1)/2`-ish prefix ranges `[0, i)` for `i = 1..=n`.
    pub fn all_prefixes(n: usize) -> Result<Self, CoreError> {
        RangeWorkload::new(n, (1..=n).map(|i| (0, i)).collect())
    }

    /// A fixed-width sliding-window workload.
    pub fn sliding_windows(n: usize, width: usize) -> Result<Self, CoreError> {
        if width == 0 || width > n {
            return Err(CoreError::Shape {
                context: "window width",
                expected: n,
                actual: width,
            });
        }
        RangeWorkload::new(n, (0..=n - width).map(|lo| (lo, lo + width)).collect())
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// The interval list.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Materializes the explicit query matrix `Q` (one indicator row per
    /// range).
    pub fn query_matrix(&self) -> Matrix {
        let mut q = Matrix::zeros(self.ranges.len(), self.n);
        for (r, &(lo, hi)) in self.ranges.iter().enumerate() {
            for j in lo..hi {
                q[(r, j)] = 1.0;
            }
        }
        q
    }

    /// Exact answers on a histogram — the matrix-free application of `Q`
    /// via a prefix-sum pass, `O(n + q)` for any number of ranges.
    pub fn true_answers(&self, hist: &[f64]) -> Result<Vec<f64>, CoreError> {
        if hist.len() != self.n {
            return Err(CoreError::Shape {
                context: "range answers",
                expected: self.n,
                actual: hist.len(),
            });
        }
        let mut prefix = vec![0.0; self.n + 1];
        for (i, &h) in hist.iter().enumerate() {
            prefix[i + 1] = prefix[i] + h;
        }
        Ok(self
            .ranges
            .iter()
            .map(|&(lo, hi)| prefix[hi] - prefix[lo])
            .collect())
    }
}

/// Which strategy matrix to use for a range workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeStrategy {
    /// Noisy base counts (`S = I`).
    Identity,
    /// The full binary-tree hierarchy of \[14\] (all levels, root to leaves).
    Hierarchical,
    /// The orthonormal Haar wavelet of \[23\].
    Wavelet,
    /// Sparse random projections / sketches \[5\]: the domain is hashed into
    /// buckets with random ±1 signs, repeated `repetitions` times. Each
    /// repetition's rows have disjoint supports and unit magnitude, so the
    /// grouping number is the repetition count `t` (paper, Section 3.1).
    /// The seed makes the strategy reproducible.
    Sketch {
        /// Number of independent repetitions `t` (= groups).
        repetitions: usize,
        /// Buckets per repetition.
        buckets: usize,
        /// RNG seed for the hash/sign draws.
        seed: u64,
    },
}

impl RangeStrategy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RangeStrategy::Identity => "I",
            RangeStrategy::Hierarchical => "H",
            RangeStrategy::Wavelet => "W",
            RangeStrategy::Sketch { .. } => "S",
        }
    }
}

/// Builds the explicit strategy matrix for a domain of size `n` — the
/// planning/oracle representation; releases use [`strategy_operator`].
pub fn strategy_matrix(strategy: RangeStrategy, n: usize) -> Matrix {
    assert!(n.is_power_of_two());
    match strategy {
        RangeStrategy::Identity => Matrix::identity(n),
        RangeStrategy::Hierarchical => {
            // One row per tree node: levels from the root (width n) down to
            // the leaves (width 1); m = 2n − 1 rows.
            let levels = n.trailing_zeros() as usize;
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(2 * n - 1);
            for level in 0..=levels {
                let width = n >> level;
                for start in (0..n).step_by(width) {
                    let mut row = vec![0.0; n];
                    for r in row.iter_mut().skip(start).take(width) {
                        *r = 1.0;
                    }
                    rows.push(row);
                }
            }
            Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>())
                .expect("tree rows are rectangular")
        }
        RangeStrategy::Wavelet => {
            let mut m = Matrix::zeros(n, n);
            for j in 0..n {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                dp_linalg::haar_forward(&mut e);
                for (i, &v) in e.iter().enumerate() {
                    m[(i, j)] = v;
                }
            }
            m
        }
        RangeStrategy::Sketch {
            repetitions,
            buckets,
            seed,
        } => {
            assert!(repetitions > 0 && buckets > 0, "sketch needs t, b ≥ 1");
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rows = vec![vec![0.0; n]; repetitions * buckets];
            for rep in 0..repetitions {
                // The bucket (row) is drawn per column, so the column loop
                // cannot become a row iterator.
                #[allow(clippy::needless_range_loop)]
                for col in 0..n {
                    let bucket = rng.gen_range(0..buckets);
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    rows[rep * buckets + bucket][col] = sign;
                }
            }
            // Buckets that received no columns are all-zero rows: they
            // carry no information and would defeat the grouping property,
            // so drop them.
            rows.retain(|r| r.iter().any(|&v| v != 0.0));
            Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>())
                .expect("sketch rows are rectangular")
        }
    }
}

/// The matrix-free release-path operator for a range strategy, with row
/// order identical to [`strategy_matrix`].
pub fn strategy_operator(
    strategy: RangeStrategy,
    n: usize,
) -> Box<dyn LinearOperator + Send + Sync> {
    assert!(n.is_power_of_two());
    match strategy {
        RangeStrategy::Identity => Box::new(IdentityOperator { n }),
        RangeStrategy::Hierarchical => Box::new(HierarchicalOperator::new(n)),
        RangeStrategy::Wavelet => Box::new(HaarOperator::new(n)),
        RangeStrategy::Sketch { .. } => {
            // Sketches are genuinely sparse unstructured matrices: store CSR.
            let dense = strategy_matrix(strategy, n);
            let mut triplets = Vec::new();
            for i in 0..dense.rows() {
                for (j, &v) in dense.row(i).iter().enumerate() {
                    if v != 0.0 {
                        triplets.push((i, j, v));
                    }
                }
            }
            Box::new(
                CsrMatrix::from_triplets(dense.rows(), n, &triplets)
                    .expect("triplets are in range by construction"),
            )
        }
    }
}

/// The range strategies' [`StrategyOperator`]: observations through a
/// matrix-free `S`, recovery by CG on the weighted normal equations,
/// answers via the prefix-sum application of `Q`.
struct RangeStrategyOp {
    operator: Box<dyn LinearOperator + Send + Sync>,
    workload: RangeWorkload,
    specs: Vec<GroupSpec>,
    row_groups: Vec<u32>,
}

impl StrategyOperator for RangeStrategyOp {
    type Answer = Vec<f64>;

    fn num_rows(&self) -> usize {
        self.operator.rows()
    }

    fn group_specs(&self) -> &[GroupSpec] {
        &self.specs
    }

    fn row_groups(&self) -> &[u32] {
        &self.row_groups
    }

    fn recover(&self, noisy: &[f64], group_weights: &[f64]) -> Result<Self::Answer, CoreError> {
        let row_weights: Vec<f64> = self
            .row_groups
            .iter()
            .map(|&g| group_weights[g as usize])
            .collect();
        let x_hat =
            dp_linalg::gls_normal_solve(&self.operator, &row_weights, noisy, CgOptions::default())?;
        self.workload.true_answers(&x_hat)
    }
}

/// A fully planned range release: group structure, budgets, variance
/// predictions and the shared release engine, ready to draw noise from.
pub struct RangePlan {
    engine: ReleaseEngine<RangeStrategyOp>,
    epsilon: f64,
    /// The Step-2 solve performed at plan time; every release reuses it, so
    /// the published budgets and the noise actually drawn cannot diverge.
    solution: BudgetSolution,
    /// The dense decomposition used for planning (with the GLS-optimal `R`)
    /// — introspection/oracle data; releases never touch it.
    pub decomposition: Decomposition,
    /// Grouping of the strategy rows.
    pub grouping: Grouping,
    /// Per-row noise budgets.
    pub row_budgets: Vec<f64>,
    /// Per-row noise variances implied by the budgets (Laplace).
    pub row_variances: Vec<f64>,
    /// Exact per-query output variances of the final recovery.
    pub query_variances: Vec<f64>,
}

/// Plans a range release: builds `S`, groups it, computes budgets
/// (uniform or optimal via `dp-opt`), and predicts the GLS recovery
/// variances for those budgets (Steps 1–3 of the paper's framework). Pure
/// ε-DP / Laplace only — the Gaussian analogue differs only in constants.
pub fn plan_range_release(
    workload: &RangeWorkload,
    strategy: RangeStrategy,
    optimal_budgets: bool,
    epsilon: f64,
) -> Result<RangePlan, CoreError> {
    let n = workload.domain();
    let q = workload.query_matrix();
    let s = strategy_matrix(strategy, n);
    let grouping =
        detect_grouping(&s).ok_or(CoreError::Singular("strategy matrix is not groupable"))?;

    // Initial recovery R₀ for the budget weights: least squares under
    // uniform noise (this matches prior work's recovery for each strategy).
    let r0 = gls_recovery(&q, &s, &vec![1.0; s.rows()])?;
    let dec0 = Decomposition {
        q: q.clone(),
        s: s.clone(),
        r: r0,
    };
    // For non-marginal recoveries R₀ may violate exact per-group weight
    // equality (Definition 3.2); group_specs enforces it strictly, so fall
    // back to summing weights per group when it does not hold exactly.
    let specs: Vec<GroupSpec> = match dec0.group_specs(&grouping, &vec![1.0; q.rows()]) {
        Ok(s) => s,
        Err(_) => {
            let b = dec0.recovery_weights(&vec![1.0; q.rows()])?;
            let g = grouping.num_groups();
            let mut specs = vec![GroupSpec { c: 0.0, s: 0.0 }; g];
            for (i, &gid) in grouping.assignment().iter().enumerate() {
                specs[gid].c = grouping.magnitudes()[gid];
                specs[gid].s += b[i];
            }
            specs
        }
    };

    let budgeting = if optimal_budgets {
        Budgeting::Optimal
    } else {
        Budgeting::Uniform
    };
    let row_groups: Vec<u32> = grouping.assignment().iter().map(|&g| g as u32).collect();
    let engine = ReleaseEngine::new(RangeStrategyOp {
        operator: strategy_operator(strategy, n),
        workload: workload.clone(),
        specs,
        row_groups,
    })?;

    let solution = engine.solve_budgets(PrivacyLevel::Pure { epsilon }, budgeting)?;
    let row_budgets: Vec<f64> = grouping
        .assignment()
        .iter()
        .map(|&gid| solution.group_budgets[gid])
        .collect();
    let mech = LaplaceMechanism;
    let row_variances: Vec<f64> = row_budgets
        .iter()
        .map(|&e| {
            if e > 0.0 {
                mech.variance(e)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    if row_variances.iter().any(|v| !v.is_finite()) {
        return Err(CoreError::Singular(
            "a strategy row received zero budget; drop unused rows first",
        ));
    }

    // Step 3 (prediction): the GLS recovery for the chosen variances and
    // its exact per-query output variances, via the dense oracle.
    let r = gls_recovery(&q, &s, &row_variances)?;
    let query_variances = output_variances(&r, &row_variances)?;
    Ok(RangePlan {
        engine,
        epsilon,
        solution,
        decomposition: Decomposition { q, s, r },
        grouping,
        row_budgets,
        row_variances,
        query_variances,
    })
}

impl RangePlan {
    /// Draws one private release of the range answers for a histogram:
    /// `z = S·hist` through the matrix-free operator, per-row Laplace noise
    /// and CG-based GLS recovery through the shared engine.
    pub fn release<R: Rng + ?Sized>(
        &self,
        hist: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, CoreError> {
        let strategy = self.engine.strategy();
        if hist.len() != strategy.operator.cols() {
            return Err(CoreError::Shape {
                context: "range release histogram",
                expected: strategy.operator.cols(),
                actual: hist.len(),
            });
        }
        let z = strategy.operator.apply(hist);
        let out = self.engine.release_with_solution(
            &z,
            PrivacyLevel::Pure {
                epsilon: self.epsilon,
            },
            &self.solution,
            Neighboring::AddRemove,
            rng,
        )?;
        Ok(out.answer)
    }

    /// Total predicted output variance.
    pub fn total_variance(&self) -> f64 {
        self.query_variances.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hist(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 13) % 7) as f64).collect()
    }

    #[test]
    fn workload_builders() {
        let w = RangeWorkload::all_prefixes(8).unwrap();
        assert_eq!(w.ranges().len(), 8);
        let w = RangeWorkload::sliding_windows(8, 3).unwrap();
        assert_eq!(w.ranges().len(), 6);
        assert!(RangeWorkload::new(6, vec![(0, 1)]).is_err()); // not a power of two
        assert!(RangeWorkload::new(8, vec![(3, 2)]).is_err());
        assert!(RangeWorkload::new(8, vec![(0, 9)]).is_err());
        assert!(RangeWorkload::new(8, vec![]).is_err());
        assert!(RangeWorkload::sliding_windows(8, 0).is_err());
    }

    #[test]
    fn true_answers_match_query_matrix() {
        let w = RangeWorkload::new(8, vec![(0, 4), (2, 7), (5, 6)]).unwrap();
        let h = hist(8);
        let direct = w.true_answers(&h).unwrap();
        let via_q = w.query_matrix().matvec(&h).unwrap();
        for (a, b) in direct.iter().zip(&via_q) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn strategy_matrices_shapes_and_groupings() {
        let n = 16;
        let s_i = strategy_matrix(RangeStrategy::Identity, n);
        assert_eq!(detect_grouping(&s_i).unwrap().num_groups(), 1);
        let s_h = strategy_matrix(RangeStrategy::Hierarchical, n);
        assert_eq!(s_h.rows(), 2 * n - 1);
        // Tree: one group per level = log2(n) + 1 (paper, Section 3.1).
        assert_eq!(detect_grouping(&s_h).unwrap().num_groups(), 5);
        let s_w = strategy_matrix(RangeStrategy::Wavelet, n);
        // Haar: log2(n) + 1 levels (paper: "g = ⌈log₂N⌉ + 1").
        assert_eq!(detect_grouping(&s_w).unwrap().num_groups(), 5);
    }

    #[test]
    fn operators_match_strategy_matrices() {
        // The matrix-free release operators must agree row-for-row with the
        // dense planning matrices for every strategy.
        let n = 16;
        let x = hist(n);
        for strategy in [
            RangeStrategy::Identity,
            RangeStrategy::Hierarchical,
            RangeStrategy::Wavelet,
            RangeStrategy::Sketch {
                repetitions: 3,
                buckets: 8,
                seed: 42,
            },
        ] {
            let dense = strategy_matrix(strategy, n);
            let op = strategy_operator(strategy, n);
            assert_eq!(op.rows(), dense.rows(), "{strategy:?}");
            assert_eq!(op.cols(), dense.cols(), "{strategy:?}");
            let via_op = op.apply(&x);
            let via_dense = dense.matvec(&x).unwrap();
            for (a, b) in via_op.iter().zip(&via_dense) {
                assert!((a - b).abs() < 1e-10, "{strategy:?}: {a} vs {b}");
            }
            let y: Vec<f64> = (0..dense.rows()).map(|i| ((i * 3) % 5) as f64).collect();
            let t_op = op.apply_transpose(&y);
            let t_dense = dense.matvec_transposed(&y).unwrap();
            for (a, b) in t_op.iter().zip(&t_dense) {
                assert!((a - b).abs() < 1e-10, "{strategy:?} transpose: {a} vs {b}");
            }
        }
    }

    #[test]
    fn plans_are_unbiased_and_noise_scales() {
        let w = RangeWorkload::all_prefixes(16).unwrap();
        let h = hist(16);
        let exact = w.true_answers(&h).unwrap();
        let plan = plan_range_release(&w, RangeStrategy::Hierarchical, true, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 800;
        let mut mean = vec![0.0; exact.len()];
        for _ in 0..trials {
            let y = plan.release(&h, &mut rng).unwrap();
            for (m, v) in mean.iter_mut().zip(&y) {
                *m += v / trials as f64;
            }
        }
        for (m, e) in mean.iter().zip(&exact) {
            assert!((m - e).abs() < 2.0, "mean {m} vs exact {e}");
        }
    }

    #[test]
    fn release_matches_dense_gls_recovery() {
        // The CG recovery through the shared engine must match the dense
        // R·z oracle on the same noisy observations. Drive both from the
        // same seed: noise is added to z by the engine, so reproduce it by
        // releasing a zero histogram (z = 0 ⇒ noisy = pure noise) — then
        // compare against R applied to that noise. Instead of reaching into
        // the engine, simply check release determinism + unbiased recovery
        // of an exact (noise-free) plan via a huge ε.
        let w = RangeWorkload::new(16, vec![(0, 5), (3, 11), (8, 16)]).unwrap();
        let h = hist(16);
        for strategy in [
            RangeStrategy::Identity,
            RangeStrategy::Hierarchical,
            RangeStrategy::Wavelet,
        ] {
            let plan = plan_range_release(&w, strategy, true, 1e9).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let y = plan.release(&h, &mut rng).unwrap();
            let exact = w.true_answers(&h).unwrap();
            for (a, b) in y.iter().zip(&exact) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{strategy:?}: ε→∞ release {a} vs exact {b}"
                );
            }
        }
    }

    #[test]
    fn releases_are_deterministic_per_seed() {
        let w = RangeWorkload::all_prefixes(32).unwrap();
        let h = hist(32);
        let plan = plan_range_release(&w, RangeStrategy::Wavelet, true, 1.0).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            plan.release(&h, &mut rng).unwrap()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn optimal_budgets_beat_uniform_for_prefix_workloads() {
        let w = RangeWorkload::all_prefixes(32).unwrap();
        for strategy in [RangeStrategy::Hierarchical, RangeStrategy::Wavelet] {
            let uni = plan_range_release(&w, strategy, false, 1.0).unwrap();
            let opt = plan_range_release(&w, strategy, true, 1.0).unwrap();
            assert!(
                opt.total_variance() <= uni.total_variance() * (1.0 + 1e-9),
                "{strategy:?}: {} vs {}",
                opt.total_variance(),
                uni.total_variance()
            );
        }
    }

    #[test]
    fn hierarchy_scales_polylog_while_identity_scales_linearly() {
        // The classic result [14] holds asymptotically: the tree's total
        // prefix variance grows like n·log³n while identity grows like n².
        // (The crossover sits beyond dense-test sizes, so we assert the
        // growth *rates* rather than absolute dominance.)
        let totals = |n: usize| -> (f64, f64) {
            let w = RangeWorkload::all_prefixes(n).unwrap();
            let ident = plan_range_release(&w, RangeStrategy::Identity, true, 1.0).unwrap();
            let tree = plan_range_release(&w, RangeStrategy::Hierarchical, true, 1.0).unwrap();
            (ident.total_variance(), tree.total_variance())
        };
        let (i32_, t32) = totals(32);
        let (i128, t128) = totals(128);
        let ident_growth = i128 / i32_;
        let tree_growth = t128 / t32;
        assert!(
            tree_growth < 0.8 * ident_growth,
            "tree growth {tree_growth} vs identity growth {ident_growth}"
        );
    }

    #[test]
    fn wavelet_recovery_uses_orthonormal_shortcut_semantics() {
        // For the invertible Haar strategy, Q = RS must hold exactly and
        // the noiseless release must be exact.
        let w = RangeWorkload::new(16, vec![(0, 5), (3, 11)]).unwrap();
        let plan = plan_range_release(&w, RangeStrategy::Wavelet, true, 1.0).unwrap();
        plan.decomposition.validate(1e-8).unwrap();
        let h = hist(16);
        // Zero-noise check through the recovery path: apply R·S directly.
        let z = plan.decomposition.s.matvec(&h).unwrap();
        let y = plan.decomposition.r.matvec(&z).unwrap();
        let exact = w.true_answers(&h).unwrap();
        for (a, b) in y.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(RangeStrategy::Identity.label(), "I");
        assert_eq!(RangeStrategy::Hierarchical.label(), "H");
        assert_eq!(RangeStrategy::Wavelet.label(), "W");
        assert_eq!(
            RangeStrategy::Sketch {
                repetitions: 2,
                buckets: 4,
                seed: 0
            }
            .label(),
            "S"
        );
    }

    #[test]
    fn sketch_strategy_is_groupable_with_t_groups() {
        // The paper's Section-3.1 claim: g = t for sketches.
        let s = strategy_matrix(
            RangeStrategy::Sketch {
                repetitions: 3,
                buckets: 8,
                seed: 42,
            },
            16,
        );
        // At most t·b rows; empty buckets are dropped.
        assert!(s.rows() <= 24 && s.rows() >= 8, "{} rows", s.rows());
        // Each repetition's rows jointly cover every column, so rows from
        // different repetitions always collide: exactly t groups.
        let g = detect_grouping(&s).unwrap();
        assert_eq!(g.num_groups(), 3);
        assert!(g.magnitudes().iter().all(|&c| c == 1.0));
    }

    #[test]
    fn sketch_release_pipeline_runs_when_full_rank() {
        // Enough repetitions × buckets make S full column rank with high
        // probability; the full Step-1..3 pipeline then applies unchanged.
        let w = RangeWorkload::new(16, vec![(0, 4), (3, 9), (10, 16)]).unwrap();
        let strategy = RangeStrategy::Sketch {
            repetitions: 8,
            buckets: 16,
            seed: 7,
        };
        let plan = plan_range_release(&w, strategy, true, 1.0).unwrap();
        plan.decomposition.validate(1e-6).unwrap();
        let h = hist(16);
        let mut rng = StdRng::seed_from_u64(1);
        let y = plan.release(&h, &mut rng).unwrap();
        assert_eq!(y.len(), 3);
        assert!(plan.total_variance().is_finite());
    }

    #[test]
    fn underdetermined_sketch_is_rejected_not_silently_wrong() {
        let w = RangeWorkload::new(16, vec![(0, 8)]).unwrap();
        let strategy = RangeStrategy::Sketch {
            repetitions: 1,
            buckets: 4, // 4 rows < N = 16: rank deficient by construction
            seed: 3,
        };
        assert!(plan_range_release(&w, strategy, true, 1.0).is_err());
    }

    #[test]
    fn histogram_shape_is_validated() {
        let w = RangeWorkload::all_prefixes(16).unwrap();
        let plan = plan_range_release(&w, RangeStrategy::Hierarchical, true, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            plan.release(&[1.0; 8], &mut rng),
            Err(CoreError::Shape { .. })
        ));
    }
}
