//! Range-query workloads and the hierarchical / wavelet strategies.
//!
//! Section 3.1 of the paper lists hierarchical structures \[14\] and the Haar
//! wavelet \[23\] among the groupable strategies its budget optimizer
//! improves: a binary tree over `x` groups rows by level (grouping number
//! `⌈log₂N⌉ + 1` counting the leaf level), and the 1-D Haar matrix groups
//! by resolution level. This module instantiates the framework for interval
//! (range-count) workloads over a 1-D domain, demonstrating that the
//! pipeline is not marginal-specific.
//!
//! Since the [`crate::strategy`] refactor the module contains **no noise or
//! recovery loop of its own**, and since the [`crate::api`] redesign
//! *planning* is matrix-free too: group structure and per-query GLS
//! variances for the identity/tree/Haar strategies come from the
//! closed-form Haar diagonalization of their normal matrices (see the
//! planning section below), so plans compile for domains far beyond the
//! dense oracle's `n ≲ 4096`. The dense [`crate::framework`] path survives
//! as the test oracle and inside the deprecated [`plan_range_release`].
//! Every release runs through the shared [`ReleaseEngine`] — observations
//! `z = S·x` and the GLS recovery are matrix-free [`LinearOperator`]
//! applications (tree sums, Haar transforms, CSR products) with conjugate
//! gradients on the weighted normal equations.

use crate::framework::{gls_recovery, output_variances, Decomposition};
use crate::grouping::{detect_grouping, Grouping};
use crate::strategy::{Budgeting, ReleaseEngine, StrategyOperator};
use crate::CoreError;
use dp_linalg::{
    CgOptions, CsrMatrix, HaarOperator, HierarchicalOperator, IdentityOperator, LinearOperator,
    Matrix,
};
use dp_mech::{LaplaceMechanism, Neighboring, NoiseMechanism, PrivacyLevel};
use dp_opt::budget::{BudgetSolution, GroupSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A workload of half-open interval counts `[lo, hi)` over domain `[0, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeWorkload {
    n: usize,
    ranges: Vec<(usize, usize)>,
}

impl RangeWorkload {
    /// Validates and builds a range workload.
    pub fn new(n: usize, ranges: Vec<(usize, usize)>) -> Result<Self, CoreError> {
        if !n.is_power_of_two() {
            return Err(CoreError::Singular("range domain must be a power of two"));
        }
        for &(lo, hi) in &ranges {
            if lo >= hi || hi > n {
                return Err(CoreError::Shape {
                    context: "range bounds",
                    expected: n,
                    actual: hi,
                });
            }
        }
        if ranges.is_empty() {
            return Err(CoreError::Singular("range workload is empty"));
        }
        Ok(RangeWorkload { n, ranges })
    }

    /// All `n(n+1)/2`-ish prefix ranges `[0, i)` for `i = 1..=n`.
    pub fn all_prefixes(n: usize) -> Result<Self, CoreError> {
        RangeWorkload::new(n, (1..=n).map(|i| (0, i)).collect())
    }

    /// A fixed-width sliding-window workload.
    pub fn sliding_windows(n: usize, width: usize) -> Result<Self, CoreError> {
        if width == 0 || width > n {
            return Err(CoreError::Shape {
                context: "window width",
                expected: n,
                actual: width,
            });
        }
        RangeWorkload::new(n, (0..=n - width).map(|lo| (lo, lo + width)).collect())
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// The interval list.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Materializes the explicit query matrix `Q` (one indicator row per
    /// range).
    pub fn query_matrix(&self) -> Matrix {
        let mut q = Matrix::zeros(self.ranges.len(), self.n);
        for (r, &(lo, hi)) in self.ranges.iter().enumerate() {
            for j in lo..hi {
                q[(r, j)] = 1.0;
            }
        }
        q
    }

    /// Exact answers on a histogram — the matrix-free application of `Q`
    /// via a prefix-sum pass, `O(n + q)` for any number of ranges.
    pub fn true_answers(&self, hist: &[f64]) -> Result<Vec<f64>, CoreError> {
        if hist.len() != self.n {
            return Err(CoreError::Shape {
                context: "range answers",
                expected: self.n,
                actual: hist.len(),
            });
        }
        let mut prefix = vec![0.0; self.n + 1];
        for (i, &h) in hist.iter().enumerate() {
            prefix[i + 1] = prefix[i] + h;
        }
        Ok(self
            .ranges
            .iter()
            .map(|&(lo, hi)| prefix[hi] - prefix[lo])
            .collect())
    }
}

/// Which strategy matrix to use for a range workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeStrategy {
    /// Noisy base counts (`S = I`).
    Identity,
    /// The full binary-tree hierarchy of \[14\] (all levels, root to leaves).
    Hierarchical,
    /// The orthonormal Haar wavelet of \[23\].
    Wavelet,
    /// Sparse random projections / sketches \[5\]: the domain is hashed into
    /// buckets with random ±1 signs, repeated `repetitions` times. Each
    /// repetition's rows have disjoint supports and unit magnitude, so the
    /// grouping number is the repetition count `t` (paper, Section 3.1).
    /// The seed makes the strategy reproducible.
    Sketch {
        /// Number of independent repetitions `t` (= groups).
        repetitions: usize,
        /// Buckets per repetition.
        buckets: usize,
        /// RNG seed for the hash/sign draws.
        seed: u64,
    },
}

impl RangeStrategy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RangeStrategy::Identity => "I",
            RangeStrategy::Hierarchical => "H",
            RangeStrategy::Wavelet => "W",
            RangeStrategy::Sketch { .. } => "S",
        }
    }
}

/// Builds the explicit strategy matrix for a domain of size `n` — the
/// planning/oracle representation; releases use [`strategy_operator`].
pub fn strategy_matrix(strategy: RangeStrategy, n: usize) -> Matrix {
    assert!(n.is_power_of_two());
    match strategy {
        RangeStrategy::Identity => Matrix::identity(n),
        RangeStrategy::Hierarchical => {
            // One row per tree node: levels from the root (width n) down to
            // the leaves (width 1); m = 2n − 1 rows.
            let levels = n.trailing_zeros() as usize;
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(2 * n - 1);
            for level in 0..=levels {
                let width = n >> level;
                for start in (0..n).step_by(width) {
                    let mut row = vec![0.0; n];
                    for r in row.iter_mut().skip(start).take(width) {
                        *r = 1.0;
                    }
                    rows.push(row);
                }
            }
            Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>())
                .expect("tree rows are rectangular")
        }
        RangeStrategy::Wavelet => {
            let mut m = Matrix::zeros(n, n);
            for j in 0..n {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                dp_linalg::haar_forward(&mut e);
                for (i, &v) in e.iter().enumerate() {
                    m[(i, j)] = v;
                }
            }
            m
        }
        RangeStrategy::Sketch {
            repetitions,
            buckets,
            seed,
        } => {
            assert!(repetitions > 0 && buckets > 0, "sketch needs t, b ≥ 1");
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rows = vec![vec![0.0; n]; repetitions * buckets];
            for rep in 0..repetitions {
                // The bucket (row) is drawn per column, so the column loop
                // cannot become a row iterator.
                #[allow(clippy::needless_range_loop)]
                for col in 0..n {
                    let bucket = rng.gen_range(0..buckets);
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    rows[rep * buckets + bucket][col] = sign;
                }
            }
            // Buckets that received no columns are all-zero rows: they
            // carry no information and would defeat the grouping property,
            // so drop them.
            rows.retain(|r| r.iter().any(|&v| v != 0.0));
            Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>())
                .expect("sketch rows are rectangular")
        }
    }
}

/// The matrix-free release-path operator for a range strategy, with row
/// order identical to [`strategy_matrix`].
pub fn strategy_operator(
    strategy: RangeStrategy,
    n: usize,
) -> Box<dyn LinearOperator + Send + Sync> {
    assert!(n.is_power_of_two());
    match strategy {
        RangeStrategy::Identity => Box::new(IdentityOperator { n }),
        RangeStrategy::Hierarchical => Box::new(HierarchicalOperator::new(n)),
        RangeStrategy::Wavelet => Box::new(HaarOperator::new(n)),
        RangeStrategy::Sketch { .. } => Box::new(sketch_csr(strategy, n)),
    }
}

/// The sketch strategy matrix in CSR form (sketches are genuinely sparse
/// unstructured matrices; everything else stays matrix-free).
fn sketch_csr(strategy: RangeStrategy, n: usize) -> CsrMatrix {
    let dense = strategy_matrix(strategy, n);
    let mut triplets = Vec::new();
    for i in 0..dense.rows() {
        for (j, &v) in dense.row(i).iter().enumerate() {
            if v != 0.0 {
                triplets.push((i, j, v));
            }
        }
    }
    CsrMatrix::from_triplets(dense.rows(), n, &triplets)
        .expect("triplets are in range by construction")
}

/// The range strategies' [`StrategyOperator`]: observations through a
/// matrix-free `S`, recovery by CG on the weighted normal equations,
/// answers via the prefix-sum application of `Q`.
pub(crate) struct RangeStrategyOp {
    operator: Box<dyn LinearOperator + Send + Sync>,
    workload: RangeWorkload,
    specs: Vec<GroupSpec>,
    row_groups: Vec<u32>,
}

impl StrategyOperator for RangeStrategyOp {
    type Answer = Vec<f64>;

    fn num_rows(&self) -> usize {
        self.operator.rows()
    }

    fn group_specs(&self) -> &[GroupSpec] {
        &self.specs
    }

    fn row_groups(&self) -> &[u32] {
        &self.row_groups
    }

    fn recover(&self, noisy: &[f64], group_weights: &[f64]) -> Result<Self::Answer, CoreError> {
        let row_weights: Vec<f64> = self
            .row_groups
            .iter()
            .map(|&g| group_weights[g as usize])
            .collect();
        let x_hat =
            dp_linalg::gls_normal_solve(&self.operator, &row_weights, noisy, CgOptions::default())?;
        self.workload.true_answers(&x_hat)
    }
}

// ---------------------------------------------------------------------------
// Matrix-free planning: closed-form group structure and variances.
//
// The key structural fact: every matrix this module groups by *levels* is
// diagonalized by the orthonormal Haar basis. Writing `H` for the Haar
// analysis transform,
//
// * the Haar strategy itself satisfies `SᵀΣ⁻¹S = Hᵀ diag(w_level(i)) H`
//   (rows are the basis, weights constant per level), and
// * the tree strategy's level-`t` rows are the indicators of the width
//   `n/2^t` dyadic blocks, whose outer-product sum is the block-ones matrix
//   `J_{n/2^t}` — and every `J_w` has the Haar vectors as eigenvectors
//   (eigenvalue `w` for basis vectors constant on `w`-blocks, 0 otherwise),
//   so `SᵀΣ⁻¹S = Σ_t w_t J_{n/2^t} = Hᵀ diag(λ) H` with the closed form
//   `λ_i = Σ_{t : n/2^t ≤ p_i} w_t · n/2^t` (`p_i` = the constant-piece
//   width of Haar vector `i`; uniform weights give `λ_i = 2p_i − 1`).
//
// Combined with the fact that a range indicator has only `O(log n)` nonzero
// Haar coefficients (a mean-zero basis vector whose support does not
// straddle an endpoint integrates to 0 over the range), group specs and
// exact per-query GLS variances follow without materializing `Q` or `S` —
// planning is `O(q log² n)` and works for domains far beyond the dense
// oracle's reach. Tests cross-check everything against the dense path.
// ---------------------------------------------------------------------------

/// The nonzero orthonormal-Haar coefficients of the indicator of `[lo, hi)`
/// over `[0, n)`, as `(coefficient index, value)` pairs — at most
/// `2·log₂ n + 1` of them, in index order per level.
fn haar_range_coeffs(n: usize, lo: usize, hi: usize) -> Vec<(usize, f64)> {
    debug_assert!(lo < hi && hi <= n);
    let overlap = |a: usize, b: usize| -> f64 { hi.min(b).saturating_sub(lo.max(a)) as f64 };
    let mut out = vec![(0usize, (hi - lo) as f64 / (n as f64).sqrt())];
    let levels = n.trailing_zeros() as usize;
    for level in 1..=levels {
        let support = n >> (level - 1);
        let half = support / 2;
        let mag = 1.0 / (support as f64).sqrt();
        let base = 1usize << (level - 1);
        let k_lo = lo / support;
        let k_hi = (hi - 1) / support;
        for k in [k_lo, k_hi] {
            if k == k_hi && k_hi == k_lo && out.last().map(|&(i, _)| i) == Some(base + k) {
                continue; // both endpoints in the same support: emit once
            }
            let start = k * support;
            let v = mag * (overlap(start, start + half) - overlap(start + half, start + support));
            if v != 0.0 {
                out.push((base + k, v));
            }
        }
    }
    out
}

/// Haar level → constant-piece width `p`: the average vector is constant
/// over all `n` cells; a detail vector at level `ℓ ≥ 1` has two constant
/// pieces of width `n/2^ℓ` each.
fn haar_piece_width(n: usize, haar_level: usize) -> usize {
    if haar_level == 0 {
        n
    } else {
        n >> haar_level
    }
}

/// Eigenvalues of the tree normal matrix `Σ_t w_t J_{n/2^t}` in the Haar
/// basis, indexed by Haar *level* (see the module comment): one entry per
/// level `0 ..= log₂ n`, with `level_weights[t]` the weight of tree level
/// `t` (root first).
fn tree_haar_eigenvalues(n: usize, level_weights: &[f64]) -> Vec<f64> {
    let levels = n.trailing_zeros() as usize;
    debug_assert_eq!(level_weights.len(), levels + 1);
    (0..=levels)
        .map(|h| {
            let p = haar_piece_width(n, h);
            (0..=levels)
                .filter(|&t| (n >> t) <= p)
                .map(|t| level_weights[t] * (n >> t) as f64)
                .sum()
        })
        .collect()
}

/// A piecewise-constant function on `[0, n)` with its prefix integral —
/// the representation of `R₀`'s per-query input `u = (SᵀS)⁻¹ q_j` for the
/// tree strategy (a sparse Haar synthesis).
struct PiecewiseConstant {
    /// Sorted breakpoints `0 = b_0 < … < b_K = n`.
    bounds: Vec<usize>,
    /// Value on `[b_k, b_{k+1})`.
    values: Vec<f64>,
    /// `P(b_k)` — prefix integral at each breakpoint.
    prefix: Vec<f64>,
}

impl PiecewiseConstant {
    /// Synthesizes `Σ (index, coeff) · h_index` from sparse Haar
    /// coefficients.
    fn from_haar(n: usize, coeffs: &[(usize, f64)]) -> PiecewiseConstant {
        let mut bounds = vec![0, n];
        for &(i, _) in coeffs {
            if i > 0 {
                let level = dp_linalg::haar_level(i);
                let support = n >> (level - 1);
                let start = (i - (1 << (level - 1))) * support;
                bounds.extend([start, start + support / 2, start + support]);
            }
        }
        bounds.sort_unstable();
        bounds.dedup();
        // Evaluate the synthesis at each piece's left edge.
        let values: Vec<f64> = bounds[..bounds.len() - 1]
            .iter()
            .map(|&x| {
                coeffs
                    .iter()
                    .map(|&(i, c)| {
                        if i == 0 {
                            return c / (n as f64).sqrt();
                        }
                        let level = dp_linalg::haar_level(i);
                        let support = n >> (level - 1);
                        let start = (i - (1 << (level - 1))) * support;
                        let mag = 1.0 / (support as f64).sqrt();
                        if x >= start && x < start + support / 2 {
                            c * mag
                        } else if x >= start + support / 2 && x < start + support {
                            -c * mag
                        } else {
                            0.0
                        }
                    })
                    .sum()
            })
            .collect();
        let mut prefix = vec![0.0; bounds.len()];
        for k in 0..values.len() {
            prefix[k + 1] = prefix[k] + values[k] * (bounds[k + 1] - bounds[k]) as f64;
        }
        PiecewiseConstant {
            bounds,
            values,
            prefix,
        }
    }

    /// The prefix integral `P(t) = ∫₀ᵗ u`.
    fn integral_to(&self, t: usize) -> f64 {
        let k = self.bounds.partition_point(|&b| b <= t) - 1;
        self.prefix[k] + self.values.get(k).copied().unwrap_or(0.0) * (t - self.bounds[k]) as f64
    }

    /// `Σ_k (∫ over dyadic node k of width w)²` for all `n/w` nodes: nodes
    /// containing an interior breakpoint are evaluated directly; maximal
    /// runs of nodes inside one piece contribute `count · (w·v)²` at once.
    fn node_sum_of_squares(&self, w: usize) -> f64 {
        let mut total = 0.0;
        // Nodes with a breakpoint strictly inside.
        let n = *self.bounds.last().expect("bounds non-empty");
        let mut last_special = usize::MAX;
        for &b in &self.bounds {
            if b == 0 || b >= n || b % w == 0 {
                continue;
            }
            let k = b / w;
            if k != last_special {
                let v = self.integral_to((k + 1) * w) - self.integral_to(k * w);
                total += v * v;
                last_special = k;
            }
        }
        // Runs of nodes fully inside one constant piece.
        for (k, &v) in self.values.iter().enumerate() {
            let first = self.bounds[k].div_ceil(w);
            let last = self.bounds[k + 1] / w;
            if last > first {
                total += (last - first) as f64 * (w as f64 * v) * (w as f64 * v);
            }
        }
        total
    }
}

/// Closed-form group structure of a range strategy: the grouping (levels)
/// and the per-group specs `(C_r, s_r)` with `s_r` from the uniform-noise
/// initial recovery `R₀` — all without materializing `Q` or `S`. `None`
/// for [`RangeStrategy::Sketch`], whose structure is data-driven.
fn analytic_range_structure(
    workload: &RangeWorkload,
    strategy: RangeStrategy,
) -> Option<(Vec<GroupSpec>, Grouping)> {
    let n = workload.domain();
    let levels = n.trailing_zeros() as usize;
    match strategy {
        RangeStrategy::Identity => {
            // R₀ = Q: b_i counts the ranges covering cell i, so the single
            // group's weight is the total covered length.
            let s: usize = workload.ranges().iter().map(|&(lo, hi)| hi - lo).sum();
            Some((
                vec![GroupSpec {
                    c: 1.0,
                    s: s as f64,
                }],
                Grouping::from_parts(vec![0; n], vec![1.0]),
            ))
        }
        RangeStrategy::Wavelet => {
            // R₀ = Q Hᵀ (Observation 1): row j of R₀ is exactly the sparse
            // Haar analysis of range j's indicator.
            let mut s_per_level = vec![0.0; levels + 1];
            for &(lo, hi) in workload.ranges() {
                for (i, c) in haar_range_coeffs(n, lo, hi) {
                    s_per_level[dp_linalg::haar_level(i)] += c * c;
                }
            }
            let assignment: Vec<usize> = (0..n).map(dp_linalg::haar_level).collect();
            let magnitudes: Vec<f64> = (0..=levels)
                .map(|h| {
                    if h == 0 {
                        1.0 / (n as f64).sqrt()
                    } else {
                        1.0 / ((n >> (h - 1)) as f64).sqrt()
                    }
                })
                .collect();
            let specs = magnitudes
                .iter()
                .zip(&s_per_level)
                .map(|(&c, &s)| GroupSpec { c, s })
                .collect();
            Some((specs, Grouping::from_parts(assignment, magnitudes)))
        }
        RangeStrategy::Hierarchical => {
            // R₀ = Q(SᵀS)⁻¹Sᵀ: per query, u = (SᵀS)⁻¹q_j is a sparse Haar
            // synthesis (closed-form eigenvalues 2p − 1), and row j of R₀
            // restricted to tree level t is the node sums of u at width
            // n/2^t.
            let lam = tree_haar_eigenvalues(n, &vec![1.0; levels + 1]);
            let mut s_per_level = vec![0.0; levels + 1];
            let level_sums: Vec<Vec<f64>> = workload
                .ranges()
                .par_iter()
                .map(|&(lo, hi)| {
                    let scaled: Vec<(usize, f64)> = haar_range_coeffs(n, lo, hi)
                        .into_iter()
                        .map(|(i, c)| (i, c / lam[dp_linalg::haar_level(i)]))
                        .collect();
                    let u = PiecewiseConstant::from_haar(n, &scaled);
                    (0..=levels)
                        .map(|t| u.node_sum_of_squares(n >> t))
                        .collect()
                })
                .collect();
            for sums in level_sums {
                for (acc, v) in s_per_level.iter_mut().zip(sums) {
                    *acc += v;
                }
            }
            let mut assignment = Vec::with_capacity(2 * n - 1);
            for t in 0..=levels {
                assignment.extend(std::iter::repeat_n(t, 1usize << t));
            }
            let specs = s_per_level
                .iter()
                .map(|&s| GroupSpec { c: 1.0, s })
                .collect();
            Some((
                specs,
                Grouping::from_parts(assignment, vec![1.0; levels + 1]),
            ))
        }
        RangeStrategy::Sketch { .. } => None,
    }
}

/// Dense group-structure oracle: materializes `S`, detects the grouping and
/// derives `s_r` from the dense uniform-noise `R₀`. Used for the sketch
/// strategy (whose structure is data-driven) and by tests as the
/// cross-check for [`analytic_range_structure`].
pub(crate) fn dense_range_structure(
    workload: &RangeWorkload,
    strategy: RangeStrategy,
) -> Result<(Vec<GroupSpec>, Grouping), CoreError> {
    let n = workload.domain();
    let q = workload.query_matrix();
    let s = strategy_matrix(strategy, n);
    let grouping =
        detect_grouping(&s).ok_or(CoreError::Singular("strategy matrix is not groupable"))?;
    // Initial recovery R₀ for the budget weights: least squares under
    // uniform noise (this matches prior work's recovery for each strategy).
    let r0 = gls_recovery(&q, &s, &vec![1.0; s.rows()])?;
    let dec0 = Decomposition { q, s, r: r0 };
    // For non-marginal recoveries R₀ may violate exact per-group weight
    // equality (Definition 3.2); group_specs enforces it strictly, so fall
    // back to summing weights per group when it does not hold exactly.
    let specs: Vec<GroupSpec> = match dec0.group_specs(&grouping, &vec![1.0; dec0.q.rows()]) {
        Ok(s) => s,
        Err(_) => {
            let b = dec0.recovery_weights(&vec![1.0; dec0.q.rows()])?;
            let g = grouping.num_groups();
            let mut specs = vec![GroupSpec { c: 0.0, s: 0.0 }; g];
            for (i, &gid) in grouping.assignment().iter().enumerate() {
                specs[gid].c = grouping.magnitudes()[gid];
                specs[gid].s += b[i];
            }
            specs
        }
    };
    Ok((specs, grouping))
}

/// A range strategy compiled **without data**: the shared release engine
/// over the matrix-free operator, plus the grouping — what
/// [`crate::api::Plan`] embeds for range workloads. Identity, hierarchical
/// and Haar strategies compile analytically (no dense matrix at any size);
/// sketches fall back to the dense oracle.
pub(crate) struct CompiledRangeStrategy {
    pub(crate) engine: ReleaseEngine<RangeStrategyOp>,
    pub(crate) grouping: Grouping,
    delta: RangeDeltaOp,
}

/// The sparse column `S[·, j]` of each range strategy, precomputed at
/// compile time so a per-record delta updates the observation vector in
/// O(column nnz) — O(1) for identity, O(log n) for the structured
/// strategies, O(nnz) of the transposed sketch row otherwise.
enum RangeDeltaOp {
    Identity,
    /// Level ℓ of the tree contributes row `2^ℓ − 1 + (j >> (levels − ℓ))`
    /// (the dyadic block of width `n/2^ℓ` containing `j`), weight 1.
    Hierarchical {
        levels: usize,
    },
    /// Column `j` of the Haar analysis = the coefficients of the unit
    /// indicator `[j, j+1)` — exactly [`haar_range_coeffs`].
    Wavelet {
        n: usize,
    },
    /// The transposed sketch: row `j` lists `(i, S[i, j])`.
    Sketch(CsrMatrix),
}

impl CompiledRangeStrategy {
    /// Compiles the strategy for a workload (data-independent).
    pub(crate) fn build(
        workload: &RangeWorkload,
        strategy: RangeStrategy,
    ) -> Result<Self, CoreError> {
        let n = workload.domain();
        let (specs, grouping) = match analytic_range_structure(workload, strategy) {
            Some(parts) => parts,
            None => dense_range_structure(workload, strategy)?,
        };
        let row_groups: Vec<u32> = grouping.assignment().iter().map(|&g| g as u32).collect();
        let delta = match strategy {
            RangeStrategy::Identity => RangeDeltaOp::Identity,
            RangeStrategy::Hierarchical => RangeDeltaOp::Hierarchical {
                levels: n.trailing_zeros() as usize,
            },
            RangeStrategy::Wavelet => RangeDeltaOp::Wavelet { n },
            RangeStrategy::Sketch { .. } => {
                RangeDeltaOp::Sketch(sketch_csr(strategy, n).transposed())
            }
        };
        let engine = ReleaseEngine::new(RangeStrategyOp {
            operator: strategy_operator(strategy, n),
            workload: workload.clone(),
            specs,
            row_groups,
        })?;
        Ok(CompiledRangeStrategy {
            engine,
            grouping,
            delta,
        })
    }

    /// Computes the exact observation vector `z = S·hist` through the
    /// matrix-free operator — the data-dependent step, run once per bound
    /// histogram.
    pub(crate) fn observe(&self, hist: &[f64]) -> Result<Vec<f64>, CoreError> {
        let op = &self.engine.strategy().operator;
        if hist.len() != op.cols() {
            return Err(CoreError::Shape {
                context: "range release histogram",
                expected: op.cols(),
                actual: hist.len(),
            });
        }
        Ok(op.apply(hist))
    }

    /// Adds `delta` units at histogram cell `cell` directly to an
    /// observation vector `z`: `z += delta · S[·, cell]` via the
    /// precomputed sparse column — O(1)/O(log n)/O(column nnz), never
    /// O(n). The incremental twin of [`CompiledRangeStrategy::observe`].
    pub(crate) fn apply_delta(
        &self,
        z: &mut [f64],
        cell: u64,
        delta: f64,
    ) -> Result<(), CoreError> {
        let n = self.engine.strategy().operator.cols();
        if cell >= n as u64 {
            return Err(CoreError::Shape {
                context: "streaming delta cell",
                expected: n,
                actual: cell as usize,
            });
        }
        let j = cell as usize;
        match &self.delta {
            RangeDeltaOp::Identity => z[j] += delta,
            RangeDeltaOp::Hierarchical { levels } => {
                for level in 0..=*levels {
                    z[(1usize << level) - 1 + (j >> (levels - level))] += delta;
                }
            }
            RangeDeltaOp::Wavelet { n } => {
                for (i, c) in haar_range_coeffs(*n, j, j + 1) {
                    z[i] += delta * c;
                }
            }
            RangeDeltaOp::Sketch(transposed) => {
                for (i, v) in transposed.row_entries(j) {
                    z[i] += delta * v;
                }
            }
        }
        Ok(())
    }

    /// Exact per-query output variances of the final GLS recovery, given
    /// per-group noise variances (`group_sigma2[r]`, group order):
    /// `Var(y_j) = q_jᵀ (SᵀΣ⁻¹S)⁻¹ q_j`, in closed form through the Haar
    /// diagonalization for the structured strategies and via the dense
    /// oracle for sketches.
    pub(crate) fn predict_query_variances(
        &self,
        workload: &RangeWorkload,
        strategy: RangeStrategy,
        group_sigma2: &[f64],
    ) -> Result<Vec<f64>, CoreError> {
        let n = workload.domain();
        match strategy {
            RangeStrategy::Identity => Ok(workload
                .ranges()
                .iter()
                .map(|&(lo, hi)| (hi - lo) as f64 * group_sigma2[0])
                .collect()),
            RangeStrategy::Wavelet => Ok(workload
                .ranges()
                .par_iter()
                .map(|&(lo, hi)| {
                    haar_range_coeffs(n, lo, hi)
                        .into_iter()
                        .map(|(i, c)| c * c * group_sigma2[dp_linalg::haar_level(i)])
                        .sum()
                })
                .collect()),
            RangeStrategy::Hierarchical => {
                let weights: Vec<f64> = group_sigma2.iter().map(|&v| 1.0 / v).collect();
                let lam = tree_haar_eigenvalues(n, &weights);
                Ok(workload
                    .ranges()
                    .par_iter()
                    .map(|&(lo, hi)| {
                        haar_range_coeffs(n, lo, hi)
                            .into_iter()
                            .map(|(i, c)| c * c / lam[dp_linalg::haar_level(i)])
                            .sum()
                    })
                    .collect())
            }
            RangeStrategy::Sketch { .. } => {
                let row_variances: Vec<f64> = self
                    .grouping
                    .assignment()
                    .iter()
                    .map(|&g| group_sigma2[g])
                    .collect();
                let q = workload.query_matrix();
                let s = strategy_matrix(strategy, n);
                let r = gls_recovery(&q, &s, &row_variances)?;
                output_variances(&r, &row_variances)
            }
        }
    }
}

/// A fully planned range release: group structure, budgets, variance
/// predictions and the shared release engine, ready to draw noise from.
#[deprecated(
    since = "0.3.0",
    note = "use dp_core::api::{PlanBuilder, Session} with WorkloadSpec::ranges — plans are \
            data-independent, support (ε,δ) privacy and batch releases"
)]
pub struct RangePlan {
    compiled: CompiledRangeStrategy,
    epsilon: f64,
    /// The Step-2 solve performed at plan time; every release reuses it, so
    /// the published budgets and the noise actually drawn cannot diverge.
    solution: BudgetSolution,
    /// The dense decomposition used for planning (with the GLS-optimal `R`)
    /// — introspection/oracle data; releases never touch it.
    pub decomposition: Decomposition,
    /// Grouping of the strategy rows.
    pub grouping: Grouping,
    /// Per-row noise budgets.
    pub row_budgets: Vec<f64>,
    /// Per-row noise variances implied by the budgets (Laplace).
    pub row_variances: Vec<f64>,
    /// Exact per-query output variances of the final recovery.
    pub query_variances: Vec<f64>,
}

/// Plans a range release: builds `S`, groups it, computes budgets
/// (uniform or optimal via `dp-opt`), and predicts the GLS recovery
/// variances for those budgets (Steps 1–3 of the paper's framework). Pure
/// ε-DP / Laplace only, and the retained [`Decomposition`] oracle keeps it
/// dense — the [`crate::api`] path is matrix-free and supports (ε,δ).
#[deprecated(
    since = "0.3.0",
    note = "use dp_core::api::PlanBuilder::ranges(..).compile() — matrix-free planning that \
            scales past the dense oracle and supports PrivacyLevel::Approx"
)]
#[allow(deprecated)]
pub fn plan_range_release(
    workload: &RangeWorkload,
    strategy: RangeStrategy,
    optimal_budgets: bool,
    epsilon: f64,
) -> Result<RangePlan, CoreError> {
    let n = workload.domain();
    let compiled = CompiledRangeStrategy::build(workload, strategy)?;
    let budgeting = if optimal_budgets {
        Budgeting::Optimal
    } else {
        Budgeting::Uniform
    };
    let solution = compiled
        .engine
        .solve_budgets(PrivacyLevel::Pure { epsilon }, budgeting)?;
    let row_budgets: Vec<f64> = compiled
        .grouping
        .assignment()
        .iter()
        .map(|&gid| solution.group_budgets[gid])
        .collect();
    let mech = LaplaceMechanism;
    let row_variances: Vec<f64> = row_budgets
        .iter()
        .map(|&e| {
            if e > 0.0 {
                mech.variance(e)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    if row_variances.iter().any(|v| !v.is_finite()) {
        return Err(CoreError::Singular(
            "a strategy row received zero budget; drop unused rows first",
        ));
    }

    // Step 3 (prediction): the GLS recovery for the chosen variances and
    // its exact per-query output variances, via the dense oracle.
    let q = workload.query_matrix();
    let s = strategy_matrix(strategy, n);
    let r = gls_recovery(&q, &s, &row_variances)?;
    let query_variances = output_variances(&r, &row_variances)?;
    let grouping = compiled.grouping.clone();
    Ok(RangePlan {
        compiled,
        epsilon,
        solution,
        decomposition: Decomposition { q, s, r },
        grouping,
        row_budgets,
        row_variances,
        query_variances,
    })
}

#[allow(deprecated)]
impl RangePlan {
    /// Draws one private release of the range answers for a histogram:
    /// `z = S·hist` through the matrix-free operator, per-row Laplace noise
    /// and CG-based GLS recovery through the shared engine.
    pub fn release<R: Rng + ?Sized>(
        &self,
        hist: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, CoreError> {
        let z = self.compiled.observe(hist)?;
        let out = self.compiled.engine.release_with_solution(
            &z,
            PrivacyLevel::Pure {
                epsilon: self.epsilon,
            },
            &self.solution,
            Neighboring::AddRemove,
            rng,
        )?;
        Ok(out.answer)
    }

    /// Total predicted output variance.
    pub fn total_variance(&self) -> f64 {
        self.query_variances.iter().sum()
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy dense planner keeps its behavioral suite
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hist(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 13) % 7) as f64).collect()
    }

    #[test]
    fn workload_builders() {
        let w = RangeWorkload::all_prefixes(8).unwrap();
        assert_eq!(w.ranges().len(), 8);
        let w = RangeWorkload::sliding_windows(8, 3).unwrap();
        assert_eq!(w.ranges().len(), 6);
        assert!(RangeWorkload::new(6, vec![(0, 1)]).is_err()); // not a power of two
        assert!(RangeWorkload::new(8, vec![(3, 2)]).is_err());
        assert!(RangeWorkload::new(8, vec![(0, 9)]).is_err());
        assert!(RangeWorkload::new(8, vec![]).is_err());
        assert!(RangeWorkload::sliding_windows(8, 0).is_err());
    }

    #[test]
    fn true_answers_match_query_matrix() {
        let w = RangeWorkload::new(8, vec![(0, 4), (2, 7), (5, 6)]).unwrap();
        let h = hist(8);
        let direct = w.true_answers(&h).unwrap();
        let via_q = w.query_matrix().matvec(&h).unwrap();
        for (a, b) in direct.iter().zip(&via_q) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn strategy_matrices_shapes_and_groupings() {
        let n = 16;
        let s_i = strategy_matrix(RangeStrategy::Identity, n);
        assert_eq!(detect_grouping(&s_i).unwrap().num_groups(), 1);
        let s_h = strategy_matrix(RangeStrategy::Hierarchical, n);
        assert_eq!(s_h.rows(), 2 * n - 1);
        // Tree: one group per level = log2(n) + 1 (paper, Section 3.1).
        assert_eq!(detect_grouping(&s_h).unwrap().num_groups(), 5);
        let s_w = strategy_matrix(RangeStrategy::Wavelet, n);
        // Haar: log2(n) + 1 levels (paper: "g = ⌈log₂N⌉ + 1").
        assert_eq!(detect_grouping(&s_w).unwrap().num_groups(), 5);
    }

    #[test]
    fn operators_match_strategy_matrices() {
        // The matrix-free release operators must agree row-for-row with the
        // dense planning matrices for every strategy.
        let n = 16;
        let x = hist(n);
        for strategy in [
            RangeStrategy::Identity,
            RangeStrategy::Hierarchical,
            RangeStrategy::Wavelet,
            RangeStrategy::Sketch {
                repetitions: 3,
                buckets: 8,
                seed: 42,
            },
        ] {
            let dense = strategy_matrix(strategy, n);
            let op = strategy_operator(strategy, n);
            assert_eq!(op.rows(), dense.rows(), "{strategy:?}");
            assert_eq!(op.cols(), dense.cols(), "{strategy:?}");
            let via_op = op.apply(&x);
            let via_dense = dense.matvec(&x).unwrap();
            for (a, b) in via_op.iter().zip(&via_dense) {
                assert!((a - b).abs() < 1e-10, "{strategy:?}: {a} vs {b}");
            }
            let y: Vec<f64> = (0..dense.rows()).map(|i| ((i * 3) % 5) as f64).collect();
            let t_op = op.apply_transpose(&y);
            let t_dense = dense.matvec_transposed(&y).unwrap();
            for (a, b) in t_op.iter().zip(&t_dense) {
                assert!((a - b).abs() < 1e-10, "{strategy:?} transpose: {a} vs {b}");
            }
        }
    }

    #[test]
    fn plans_are_unbiased_and_noise_scales() {
        let w = RangeWorkload::all_prefixes(16).unwrap();
        let h = hist(16);
        let exact = w.true_answers(&h).unwrap();
        let plan = plan_range_release(&w, RangeStrategy::Hierarchical, true, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 800;
        let mut mean = vec![0.0; exact.len()];
        for _ in 0..trials {
            let y = plan.release(&h, &mut rng).unwrap();
            for (m, v) in mean.iter_mut().zip(&y) {
                *m += v / trials as f64;
            }
        }
        for (m, e) in mean.iter().zip(&exact) {
            assert!((m - e).abs() < 2.0, "mean {m} vs exact {e}");
        }
    }

    #[test]
    fn release_matches_dense_gls_recovery() {
        // The CG recovery through the shared engine must match the dense
        // R·z oracle on the same noisy observations. Drive both from the
        // same seed: noise is added to z by the engine, so reproduce it by
        // releasing a zero histogram (z = 0 ⇒ noisy = pure noise) — then
        // compare against R applied to that noise. Instead of reaching into
        // the engine, simply check release determinism + unbiased recovery
        // of an exact (noise-free) plan via a huge ε.
        let w = RangeWorkload::new(16, vec![(0, 5), (3, 11), (8, 16)]).unwrap();
        let h = hist(16);
        for strategy in [
            RangeStrategy::Identity,
            RangeStrategy::Hierarchical,
            RangeStrategy::Wavelet,
        ] {
            let plan = plan_range_release(&w, strategy, true, 1e9).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let y = plan.release(&h, &mut rng).unwrap();
            let exact = w.true_answers(&h).unwrap();
            for (a, b) in y.iter().zip(&exact) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{strategy:?}: ε→∞ release {a} vs exact {b}"
                );
            }
        }
    }

    #[test]
    fn releases_are_deterministic_per_seed() {
        let w = RangeWorkload::all_prefixes(32).unwrap();
        let h = hist(32);
        let plan = plan_range_release(&w, RangeStrategy::Wavelet, true, 1.0).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            plan.release(&h, &mut rng).unwrap()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn optimal_budgets_beat_uniform_for_prefix_workloads() {
        let w = RangeWorkload::all_prefixes(32).unwrap();
        for strategy in [RangeStrategy::Hierarchical, RangeStrategy::Wavelet] {
            let uni = plan_range_release(&w, strategy, false, 1.0).unwrap();
            let opt = plan_range_release(&w, strategy, true, 1.0).unwrap();
            assert!(
                opt.total_variance() <= uni.total_variance() * (1.0 + 1e-9),
                "{strategy:?}: {} vs {}",
                opt.total_variance(),
                uni.total_variance()
            );
        }
    }

    #[test]
    fn hierarchy_scales_polylog_while_identity_scales_linearly() {
        // The classic result [14] holds asymptotically: the tree's total
        // prefix variance grows like n·log³n while identity grows like n².
        // (The crossover sits beyond dense-test sizes, so we assert the
        // growth *rates* rather than absolute dominance.)
        let totals = |n: usize| -> (f64, f64) {
            let w = RangeWorkload::all_prefixes(n).unwrap();
            let ident = plan_range_release(&w, RangeStrategy::Identity, true, 1.0).unwrap();
            let tree = plan_range_release(&w, RangeStrategy::Hierarchical, true, 1.0).unwrap();
            (ident.total_variance(), tree.total_variance())
        };
        let (i32_, t32) = totals(32);
        let (i128, t128) = totals(128);
        let ident_growth = i128 / i32_;
        let tree_growth = t128 / t32;
        assert!(
            tree_growth < 0.8 * ident_growth,
            "tree growth {tree_growth} vs identity growth {ident_growth}"
        );
    }

    #[test]
    fn wavelet_recovery_uses_orthonormal_shortcut_semantics() {
        // For the invertible Haar strategy, Q = RS must hold exactly and
        // the noiseless release must be exact.
        let w = RangeWorkload::new(16, vec![(0, 5), (3, 11)]).unwrap();
        let plan = plan_range_release(&w, RangeStrategy::Wavelet, true, 1.0).unwrap();
        plan.decomposition.validate(1e-8).unwrap();
        let h = hist(16);
        // Zero-noise check through the recovery path: apply R·S directly.
        let z = plan.decomposition.s.matvec(&h).unwrap();
        let y = plan.decomposition.r.matvec(&z).unwrap();
        let exact = w.true_answers(&h).unwrap();
        for (a, b) in y.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(RangeStrategy::Identity.label(), "I");
        assert_eq!(RangeStrategy::Hierarchical.label(), "H");
        assert_eq!(RangeStrategy::Wavelet.label(), "W");
        assert_eq!(
            RangeStrategy::Sketch {
                repetitions: 2,
                buckets: 4,
                seed: 0
            }
            .label(),
            "S"
        );
    }

    #[test]
    fn sketch_strategy_is_groupable_with_t_groups() {
        // The paper's Section-3.1 claim: g = t for sketches.
        let s = strategy_matrix(
            RangeStrategy::Sketch {
                repetitions: 3,
                buckets: 8,
                seed: 42,
            },
            16,
        );
        // At most t·b rows; empty buckets are dropped.
        assert!(s.rows() <= 24 && s.rows() >= 8, "{} rows", s.rows());
        // Each repetition's rows jointly cover every column, so rows from
        // different repetitions always collide: exactly t groups.
        let g = detect_grouping(&s).unwrap();
        assert_eq!(g.num_groups(), 3);
        assert!(g.magnitudes().iter().all(|&c| c == 1.0));
    }

    #[test]
    fn sketch_release_pipeline_runs_when_full_rank() {
        // Enough repetitions × buckets make S full column rank with high
        // probability; the full Step-1..3 pipeline then applies unchanged.
        let w = RangeWorkload::new(16, vec![(0, 4), (3, 9), (10, 16)]).unwrap();
        let strategy = RangeStrategy::Sketch {
            repetitions: 8,
            buckets: 16,
            seed: 7,
        };
        let plan = plan_range_release(&w, strategy, true, 1.0).unwrap();
        plan.decomposition.validate(1e-6).unwrap();
        let h = hist(16);
        let mut rng = StdRng::seed_from_u64(1);
        let y = plan.release(&h, &mut rng).unwrap();
        assert_eq!(y.len(), 3);
        assert!(plan.total_variance().is_finite());
    }

    #[test]
    fn underdetermined_sketch_is_rejected_not_silently_wrong() {
        let w = RangeWorkload::new(16, vec![(0, 8)]).unwrap();
        let strategy = RangeStrategy::Sketch {
            repetitions: 1,
            buckets: 4, // 4 rows < N = 16: rank deficient by construction
            seed: 3,
        };
        assert!(plan_range_release(&w, strategy, true, 1.0).is_err());
    }

    #[test]
    fn haar_range_coeffs_match_dense_transform() {
        // The sparse closed-form Haar analysis of a range indicator must
        // equal haar_forward applied to the dense indicator, for a battery
        // of ranges including edge-touching and single-cell ones.
        for n in [8usize, 16, 32] {
            let cases = [
                (0, n),
                (0, 1),
                (n - 1, n),
                (1, n - 1),
                (3, 7),
                (n / 4, 3 * n / 4),
                (n / 2 - 1, n / 2 + 1),
            ];
            for &(lo, hi) in &cases {
                if lo >= hi || hi > n {
                    continue;
                }
                let mut dense = vec![0.0; n];
                for v in dense.iter_mut().take(hi).skip(lo) {
                    *v = 1.0;
                }
                dp_linalg::haar_forward(&mut dense);
                let mut sparse = vec![0.0; n];
                for (i, c) in haar_range_coeffs(n, lo, hi) {
                    assert_eq!(sparse[i], 0.0, "coefficient {i} emitted twice");
                    sparse[i] = c;
                }
                for (i, (a, b)) in sparse.iter().zip(&dense).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "n={n} [{lo},{hi}) coeff {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_structure_matches_dense_oracle() {
        // The matrix-free group specs must agree with the dense R₀-based
        // derivation (same grouping, same C_r, same s_r).
        for n in [16usize, 64] {
            let workloads = [
                RangeWorkload::all_prefixes(n).unwrap(),
                RangeWorkload::new(n, vec![(0, 5), (3, 11), (8, n), (n / 2, n / 2 + 1)]).unwrap(),
                RangeWorkload::sliding_windows(n, 3).unwrap(),
            ];
            for w in &workloads {
                for strategy in [
                    RangeStrategy::Identity,
                    RangeStrategy::Hierarchical,
                    RangeStrategy::Wavelet,
                ] {
                    let (fast_specs, fast_grouping) =
                        analytic_range_structure(w, strategy).expect("structured strategy");
                    let (dense_specs, dense_grouping) = dense_range_structure(w, strategy).unwrap();
                    assert_eq!(fast_grouping.assignment(), dense_grouping.assignment());
                    for (a, b) in fast_grouping
                        .magnitudes()
                        .iter()
                        .zip(dense_grouping.magnitudes())
                    {
                        assert!((a - b).abs() < 1e-12, "{strategy:?}: C {a} vs {b}");
                    }
                    assert_eq!(fast_specs.len(), dense_specs.len());
                    for (g, (a, b)) in fast_specs.iter().zip(&dense_specs).enumerate() {
                        assert!((a.c - b.c).abs() < 1e-12, "{strategy:?} group {g}");
                        assert!(
                            (a.s - b.s).abs() < 1e-8 * b.s.abs().max(1.0),
                            "{strategy:?} n={n} group {g}: s {} vs {}",
                            a.s,
                            b.s
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn analytic_query_variances_match_dense_oracle() {
        // The closed-form per-query GLS variances must match the dense
        // R/output_variances oracle for both budgeting modes.
        let n = 32;
        let w = RangeWorkload::all_prefixes(n).unwrap();
        for strategy in [
            RangeStrategy::Identity,
            RangeStrategy::Hierarchical,
            RangeStrategy::Wavelet,
        ] {
            for budgeting in [Budgeting::Uniform, Budgeting::Optimal] {
                let compiled = CompiledRangeStrategy::build(&w, strategy).unwrap();
                let solution = compiled
                    .engine
                    .solve_budgets(PrivacyLevel::Pure { epsilon: 0.7 }, budgeting)
                    .unwrap();
                let sigma2: Vec<f64> = solution
                    .group_budgets
                    .iter()
                    .map(|&e| LaplaceMechanism.variance(e))
                    .collect();
                let fast = compiled
                    .predict_query_variances(&w, strategy, &sigma2)
                    .unwrap();
                let row_variances: Vec<f64> = compiled
                    .grouping
                    .assignment()
                    .iter()
                    .map(|&g| sigma2[g])
                    .collect();
                let q = w.query_matrix();
                let s = strategy_matrix(strategy, n);
                let r = gls_recovery(&q, &s, &row_variances).unwrap();
                let oracle = output_variances(&r, &row_variances).unwrap();
                for (j, (a, b)) in fast.iter().zip(&oracle).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-6 * b.max(1e-12),
                        "{strategy:?}/{budgeting:?} query {j}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_free_planning_scales_past_the_dense_oracle() {
        // A domain of 2^14 would need a 16384×32767-entry dense S (and an
        // O(n³) GLS) under the old planner; the analytic path compiles the
        // full prefix workload in well under a second.
        let n = 1usize << 14;
        let w = RangeWorkload::all_prefixes(n).unwrap();
        for strategy in [RangeStrategy::Hierarchical, RangeStrategy::Wavelet] {
            let compiled = CompiledRangeStrategy::build(&w, strategy).unwrap();
            let groups = compiled.engine.strategy().group_specs().len();
            assert_eq!(groups, 15, "{strategy:?}: log2(n)+1 level groups");
            assert!(compiled
                .engine
                .strategy()
                .group_specs()
                .iter()
                .all(|g| g.s > 0.0 && g.c > 0.0));
            let solution = compiled
                .engine
                .solve_budgets(PrivacyLevel::Pure { epsilon: 1.0 }, Budgeting::Optimal)
                .unwrap();
            let sigma2: Vec<f64> = solution
                .group_budgets
                .iter()
                .map(|&e| LaplaceMechanism.variance(e))
                .collect();
            let vars = compiled
                .predict_query_variances(&w, strategy, &sigma2)
                .unwrap();
            assert_eq!(vars.len(), n);
            assert!(vars.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn histogram_shape_is_validated() {
        let w = RangeWorkload::all_prefixes(16).unwrap();
        let plan = plan_range_release(&w, RangeStrategy::Hierarchical, true, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            plan.release(&[1.0; 8], &mut rng),
            Err(CoreError::Shape { .. })
        ));
    }
}
