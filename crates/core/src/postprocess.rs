//! Post-processing of released marginals: non-negativity and integrality.
//!
//! The paper's concluding remarks (Section 6) note that applications often
//! additionally require the released answers to "correspond to a data set
//! in which all counts are integral and non-negative", and that this is
//! easy when base counts are materialized but open in general. This module
//! implements both pieces:
//!
//! * [`clamp_round_base_counts`] — the easy case the paper describes:
//!   clamp a noisy count vector at zero and round to integers *before*
//!   aggregating marginals (so the result is exactly the marginal set of a
//!   non-negative integral dataset).
//! * [`project_nonnegative`] — the general case: given consistent released
//!   marginals (from any strategy), construct a non-negative integral
//!   synthetic contingency table whose marginals approximate them, by
//!   clamped reconstruction over the coefficient support followed by
//!   largest-remainder rounding that preserves the total count. Because
//!   post-processing uses only released values, differential privacy is
//!   preserved for free.

use crate::fourier::CoefficientSpace;
use crate::marginal::MarginalTable;
use crate::mask::AttrMask;
use crate::CoreError;

/// The easy case of Section 6: clamp a noisy base-count vector at 0 and
/// round to the nearest integer, in place. The marginals of the result are
/// consistent, non-negative and integral by construction.
pub fn clamp_round_base_counts(counts: &mut [f64]) {
    for v in counts.iter_mut() {
        *v = v.max(0.0).round();
    }
}

/// Options for [`project_nonnegative`].
#[derive(Debug, Clone, Copy)]
pub struct ProjectOptions {
    /// Round cell values to integers (largest-remainder, preserving the
    /// rounded total). If false, only non-negativity is enforced.
    pub integral: bool,
    /// Maximum domain bits for which the dense reconstruction is allowed
    /// (the projection materializes a `2^d` vector).
    pub max_bits: usize,
}

impl Default for ProjectOptions {
    fn default() -> Self {
        ProjectOptions {
            integral: true,
            max_bits: 26,
        }
    }
}

/// Projects consistent released marginals onto non-negative (optionally
/// integral) synthetic data, returning the synthetic count vector and the
/// marginals recomputed from it.
///
/// The construction: rebuild `x̂` from the marginals' Fourier coefficients
/// over the *full* domain (this is the minimum-norm consistent preimage),
/// clamp negatives to zero, optionally round with total preservation, then
/// recompute the workload marginals. The output marginals are therefore
/// realizable by an actual dataset — the strongest consistency notion in
/// Definition 2.3 plus the Section-6 extras.
pub fn project_nonnegative(
    d: usize,
    marginals: &[MarginalTable],
    opts: ProjectOptions,
) -> Result<(Vec<f64>, Vec<MarginalTable>), CoreError> {
    if marginals.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }
    if d > opts.max_bits {
        return Err(CoreError::Shape {
            context: "project_nonnegative domain bits",
            expected: opts.max_bits,
            actual: d,
        });
    }
    let masks: Vec<AttrMask> = marginals.iter().map(|m| m.mask()).collect();
    let space = CoefficientSpace::from_marginals(d, &masks);
    // Average the coefficient estimates over the marginals that contain
    // them (inputs are assumed consistent, so they agree; averaging makes
    // the call robust to slight numerical inconsistency).
    let mut coeffs = vec![0.0; space.len()];
    let mut hits = vec![0u32; space.len()];
    for m in marginals {
        let mut tmp = vec![0.0; space.len()];
        space.fill_from_marginal(&mut tmp, m)?;
        for (pos, _) in space
            .block_positions(m.mask())?
            .iter()
            .map(|&p| (p as usize, ()))
        {
            coeffs[pos] += tmp[pos];
            hits[pos] += 1;
        }
    }
    for (c, &h) in coeffs.iter_mut().zip(&hits) {
        if h > 0 {
            *c /= h as f64;
        }
    }

    // Minimum-norm consistent preimage: expand the coefficients to the
    // full domain with one inverse WHT (unsupported coefficients are 0).
    let n = 1usize << d;
    let mut x = vec![0.0; n];
    for (&beta, &c) in space.support().iter().zip(&coeffs) {
        x[beta.0 as usize] = c;
    }
    dp_linalg::fwht(&mut x);
    let scale = 1.0 / (n as f64).sqrt();
    for v in &mut x {
        *v *= scale;
    }

    // Non-negativity. Clamping adds mass (the minimum-norm preimage has
    // negative cells even for exactly consistent inputs), so rescale back
    // to the released total afterwards — the total is the DC coefficient
    // times 2^{d/2}, i.e. what every input marginal sums to.
    let target_total: f64 = marginals.iter().map(|m| m.sum()).sum::<f64>() / marginals.len() as f64;
    for v in &mut x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    let clamped_total: f64 = x.iter().sum();
    if clamped_total > 0.0 && target_total > 0.0 {
        let factor = target_total / clamped_total;
        for v in &mut x {
            *v *= factor;
        }
    }
    // Integrality with total preservation (largest remainder).
    if opts.integral {
        round_preserving_total(&mut x);
    }

    let table = crate::table::ContingencyTable::from_counts(x);
    let out = table.marginals(&masks);
    Ok((table.counts().to_vec(), out))
}

/// Rounds a non-negative vector to integers while keeping the (rounded)
/// total fixed, using the largest-remainder method.
fn round_preserving_total(x: &mut [f64]) {
    let total: f64 = x.iter().sum();
    let target = total.round() as i64;
    let mut floor_sum: i64 = 0;
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(x.len());
    for (i, v) in x.iter_mut().enumerate() {
        let f = v.floor();
        floor_sum += f as i64;
        remainders.push((i, *v - f));
        *v = f;
    }
    let mut deficit = (target - floor_sum).max(0) as usize;
    if deficit > 0 {
        remainders.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("remainders are finite"));
        for &(i, _) in remainders.iter().take(deficit.min(x.len())) {
            x[i] += 1.0;
        }
        deficit = deficit.saturating_sub(x.len());
        // If the deficit exceeded the number of cells (cannot happen for
        // remainders < 1 each, but guard anyway), dump it on cell 0.
        if deficit > 0 {
            x[0] += deficit as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ContingencyTable;
    use crate::workload::Workload;

    fn exact_setup() -> (ContingencyTable, Workload) {
        let t = ContingencyTable::from_counts(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let w = Workload::new(3, vec![AttrMask(0b011), AttrMask(0b110)]).unwrap();
        (t, w)
    }

    #[test]
    fn clamp_round_enforces_both_properties() {
        let mut counts = vec![1.4, -0.3, 2.6, -5.0, 0.0];
        clamp_round_base_counts(&mut counts);
        assert_eq!(counts, vec![1.0, 0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn projection_of_exact_nonneg_integral_marginals_is_lossless() {
        let (t, w) = exact_setup();
        let exact = w.true_answers(&t);
        let (_, projected) = project_nonnegative(3, &exact, ProjectOptions::default()).unwrap();
        // The exact marginals come from non-negative integral data whose
        // min-norm preimage may differ from t, but the *marginals* must be
        // reproduced exactly (they are determined by the coefficients).
        for (p, e) in projected.iter().zip(&exact) {
            for (a, b) in p.values().iter().zip(e.values()) {
                assert!((a - b).abs() < 1.0 + 1e-9, "{a} vs {b}");
            }
        }
        // Totals are preserved exactly.
        assert!((projected[0].sum() - exact[0].sum()).abs() < 1e-6);
    }

    #[test]
    fn projection_output_is_nonnegative_and_integral() {
        let (t, w) = exact_setup();
        // Perturb to introduce negatives and fractions.
        let noisy: Vec<MarginalTable> = w
            .true_answers(&t)
            .into_iter()
            .map(|m| {
                let vals: Vec<f64> = m
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v + if i % 2 == 0 { -2.7 } else { 1.3 })
                    .collect();
                MarginalTable::new(m.mask(), vals)
            })
            .collect();
        let (counts, projected) =
            project_nonnegative(3, &noisy, ProjectOptions::default()).unwrap();
        assert!(counts.iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
        for m in &projected {
            assert!(m.values().iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
        }
        // Projected marginals are mutually consistent (they come from one
        // synthetic table).
        assert!(crate::consistency::is_consistent(&projected, 1e-9));
    }

    #[test]
    fn non_integral_mode_keeps_fractions() {
        let (t, w) = exact_setup();
        let noisy: Vec<MarginalTable> = w
            .true_answers(&t)
            .into_iter()
            .map(|m| {
                let vals: Vec<f64> = m.values().iter().map(|v| v + 0.25).collect();
                MarginalTable::new(m.mask(), vals)
            })
            .collect();
        let (counts, _) = project_nonnegative(
            3,
            &noisy,
            ProjectOptions {
                integral: false,
                max_bits: 26,
            },
        )
        .unwrap();
        assert!(counts.iter().all(|&v| v >= 0.0));
        assert!(counts.iter().any(|&v| v.fract() != 0.0));
    }

    #[test]
    fn round_preserving_total_exact() {
        let mut x = vec![0.3, 0.3, 0.4, 1.5, 2.5];
        round_preserving_total(&mut x);
        assert_eq!(x.iter().sum::<f64>(), 5.0);
        assert!(x.iter().all(|&v| v.fract() == 0.0));
        // Total 5.0 → floors sum to 3, deficit 2 goes to the two largest
        // remainders (the .5s at indices 3 and 4): 1.5 → 2 and 2.5 → 3.
        assert_eq!(x[3], 2.0);
        assert_eq!(x[4], 3.0);
    }

    #[test]
    fn domain_cap_is_enforced() {
        let m = vec![MarginalTable::new(AttrMask(0b1), vec![1.0, 2.0])];
        let res = project_nonnegative(
            30,
            &m,
            ProjectOptions {
                integral: true,
                max_bits: 20,
            },
        );
        assert!(matches!(res, Err(CoreError::Shape { .. })));
    }

    #[test]
    fn empty_input() {
        let (c, m) = project_nonnegative(3, &[], ProjectOptions::default()).unwrap();
        assert!(c.is_empty() && m.is_empty());
    }
}
