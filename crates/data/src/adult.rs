//! Synthetic stand-in for the UCI **Adult** dataset (Section 5.1 of the
//! paper), plus a loader for the real `adult.data` file.
//!
//! The paper extracts eight categorical attributes: workclass (9),
//! education (16), marital-status (7), occupation (15), relationship (6),
//! race (5), sex (2) and salary (2). The synthetic generator reproduces the
//! published headline structure of Adult — heavy skew on workclass
//! (majority "Private"), education peaked at HS-grad/some-college, salary
//! correlated with education and sex, occupation correlated with education
//! — via a small Bayesian-network-style dependency chain. Absolute counts
//! differ from the real data; the evaluation only relies on the
//! dimensionality, skew and correlation being census-like.

use crate::synthetic::Categorical;
use crate::DataError;
use dp_core::schema::{Attribute, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of records in the real Adult dataset (and in the synthetic one).
pub const ADULT_RECORDS: usize = 32_561;

/// Cardinalities of the eight attributes, in the paper's order.
pub const ADULT_CARDINALITIES: [usize; 8] = [9, 16, 7, 15, 6, 5, 2, 2];

/// Attribute names, in the paper's order.
pub const ADULT_NAMES: [&str; 8] = [
    "workclass",
    "education",
    "marital-status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "salary",
];

/// The Adult schema (23 encoded bits).
pub fn adult_schema() -> Schema {
    Schema::new(
        ADULT_NAMES
            .iter()
            .zip(ADULT_CARDINALITIES)
            .map(|(n, c)| Attribute::new(*n, c).expect("static cardinalities are ≥ 2"))
            .collect(),
    )
    .expect("static schema fits in 63 bits")
}

/// Generates `n` synthetic Adult-like records with a fixed seed.
pub fn synthesize_adult(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Marginal skew profiles (weights, not probabilities). The shapes mirror
    // the real data's published distributions qualitatively.
    let workclass = Categorical::new(&[70.0, 8.0, 6.5, 4.0, 3.5, 3.3, 1.4, 0.2, 0.1]);
    let education = Categorical::new(&[
        32.0, 22.0, 16.0, 11.0, 5.5, 4.3, 3.3, 2.0, 1.7, 1.4, 1.2, 0.9, 0.6, 0.5, 0.3, 0.2,
    ]);
    let marital = Categorical::new(&[46.0, 33.0, 13.6, 3.1, 3.0, 1.25, 0.07]);
    let relationship = Categorical::new(&[40.5, 25.5, 15.5, 10.5, 4.8, 3.0]);
    let race = Categorical::new(&[85.4, 9.6, 3.1, 1.0, 0.8]);

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let wc = workclass.sample(&mut rng);
        let edu = education.sample(&mut rng);
        let ms = marital.sample(&mut rng);
        // Occupation depends on education: higher education shifts toward
        // the professional occupations (low indices here).
        let edu_tier = (edu as f64 / 4.0).min(3.0); // 0 (high) .. 3 (low)
        let occ_weights: Vec<f64> = (0..15)
            .map(|o| {
                let professional = if o < 5 { 3.0 - edu_tier * 0.8 } else { 1.0 };
                (professional.max(0.2)) * (15.0 - o as f64)
            })
            .collect();
        let occ = Categorical::new(&occ_weights).sample(&mut rng);
        let rel = relationship.sample(&mut rng);
        let rc = race.sample(&mut rng);
        // Sex: mildly imbalanced (≈ 2:1 in Adult).
        let sex = usize::from(rng.gen::<f64>() < 1.0 / 3.0);
        // Salary (>50K) correlated with education, sex and marital status.
        let mut p_high: f64 = 0.08;
        if edu <= 3 {
            p_high += 0.18;
        }
        if edu <= 1 {
            p_high += 0.10;
        }
        if sex == 0 {
            p_high += 0.08;
        }
        if ms == 0 {
            p_high += 0.12;
        }
        let salary = usize::from(rng.gen::<f64>() < p_high);
        out.push(vec![wc, edu, ms, occ, rel, rc, sex, salary]);
    }
    out
}

/// Parses the real UCI `adult.data` CSV (comma-separated, 15 columns, with
/// `?` for missing values) into records over the paper's eight attributes.
/// Rows with missing values in the extracted attributes are skipped, as in
/// standard preprocessing.
pub fn parse_adult_csv(content: &str) -> Result<Vec<Vec<usize>>, DataError> {
    // Column positions of the extracted attributes in the raw file.
    const COLS: [usize; 8] = [1, 3, 5, 6, 7, 8, 9, 14];
    let dictionaries: [&[&str]; 8] = [
        &[
            "Private",
            "Self-emp-not-inc",
            "Self-emp-inc",
            "Federal-gov",
            "Local-gov",
            "State-gov",
            "Without-pay",
            "Never-worked",
            "Other-workclass",
        ],
        &[
            "HS-grad",
            "Some-college",
            "Bachelors",
            "Masters",
            "Assoc-voc",
            "11th",
            "Assoc-acdm",
            "10th",
            "7th-8th",
            "Prof-school",
            "9th",
            "12th",
            "Doctorate",
            "5th-6th",
            "1st-4th",
            "Preschool",
        ],
        &[
            "Married-civ-spouse",
            "Never-married",
            "Divorced",
            "Separated",
            "Widowed",
            "Married-spouse-absent",
            "Married-AF-spouse",
        ],
        &[
            "Prof-specialty",
            "Craft-repair",
            "Exec-managerial",
            "Adm-clerical",
            "Sales",
            "Other-service",
            "Machine-op-inspct",
            "Transport-moving",
            "Handlers-cleaners",
            "Farming-fishing",
            "Tech-support",
            "Protective-serv",
            "Priv-house-serv",
            "Armed-Forces",
            "Other-occupation",
        ],
        &[
            "Husband",
            "Not-in-family",
            "Own-child",
            "Unmarried",
            "Wife",
            "Other-relative",
        ],
        &[
            "White",
            "Black",
            "Asian-Pac-Islander",
            "Amer-Indian-Eskimo",
            "Other",
        ],
        &["Male", "Female"],
        &["<=50K", ">50K"],
    ];

    let mut out = Vec::new();
    'rows: for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 15 {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("expected 15 fields, found {}", fields.len()),
            });
        }
        let mut record = Vec::with_capacity(8);
        for (a, &col) in COLS.iter().enumerate() {
            let raw = fields[col].trim_end_matches('.');
            if raw == "?" {
                continue 'rows;
            }
            let Some(code) = dictionaries[a].iter().position(|&v| v == raw) else {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("unknown value {raw:?} for attribute {}", ADULT_NAMES[a]),
                });
            };
            record.push(code);
        }
        out.push(record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::table::ContingencyTable;

    #[test]
    fn schema_matches_paper() {
        let s = adult_schema();
        assert_eq!(s.num_attributes(), 8);
        assert_eq!(s.domain_bits(), 23);
        for (a, c) in s.attributes().iter().zip(ADULT_CARDINALITIES) {
            assert_eq!(a.cardinality, c);
        }
    }

    #[test]
    fn synthesis_is_deterministic_and_in_domain() {
        let a = synthesize_adult(500, 42);
        let b = synthesize_adult(500, 42);
        assert_eq!(a, b);
        let c = synthesize_adult(500, 43);
        assert_ne!(a, c);
        let schema = adult_schema();
        for rec in &a {
            assert!(schema.encode(rec).is_ok(), "{rec:?}");
        }
    }

    #[test]
    fn synthesis_is_skewed_and_correlated() {
        let recs = synthesize_adult(20_000, 7);
        // Workclass 0 ("Private") dominates.
        let private = recs.iter().filter(|r| r[0] == 0).count() as f64 / recs.len() as f64;
        assert!(private > 0.55, "P(private) = {private}");
        // Education–salary correlation: P(high salary | low education code)
        // exceeds P(high | high code).
        let (mut hi_edu_hi_sal, mut hi_edu) = (0.0, 0.0);
        let (mut lo_edu_hi_sal, mut lo_edu) = (0.0, 0.0);
        for r in &recs {
            if r[1] <= 3 {
                hi_edu += 1.0;
                hi_edu_hi_sal += r[7] as f64;
            } else {
                lo_edu += 1.0;
                lo_edu_hi_sal += r[7] as f64;
            }
        }
        assert!(hi_edu_hi_sal / hi_edu > 1.5 * (lo_edu_hi_sal / lo_edu));
    }

    #[test]
    fn table_total_matches_record_count() {
        let recs = synthesize_adult(1000, 1);
        let schema = adult_schema();
        let t = ContingencyTable::from_records(&schema, &recs).unwrap();
        assert_eq!(t.total(), 1000.0);
        assert_eq!(t.dims(), 23);
    }

    #[test]
    fn csv_parser_roundtrip() {
        let line = "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, \
                    Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K";
        let recs = parse_adult_csv(line).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], vec![5, 2, 1, 3, 1, 0, 0, 0]);
    }

    #[test]
    fn csv_parser_skips_missing_and_rejects_garbage() {
        let missing = "39, ?, 77516, Bachelors, 13, Never-married, Adm-clerical, \
                       Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K";
        assert!(parse_adult_csv(missing).unwrap().is_empty());
        assert!(parse_adult_csv("a,b,c").is_err());
        let unknown = "39, Klingon, 77516, Bachelors, 13, Never-married, Adm-clerical, \
                       Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K";
        assert!(matches!(
            parse_adult_csv(unknown),
            Err(DataError::Parse { .. })
        ));
    }
}
