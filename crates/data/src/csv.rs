//! File-level dataset loading: real data takes precedence over synthesis.

use crate::DataError;
use std::path::Path;

/// Loads records for the Adult experiment: if `path` exists it is parsed as
/// the real UCI `adult.data` file; otherwise the synthetic generator is
/// used with the given seed. Returns the records and a flag saying whether
/// real data was used.
pub fn adult_records_or_synthetic(
    path: &Path,
    seed: u64,
) -> Result<(Vec<Vec<usize>>, bool), DataError> {
    if path.exists() {
        let content = std::fs::read_to_string(path)?;
        Ok((crate::adult::parse_adult_csv(&content)?, true))
    } else {
        Ok((
            crate::adult::synthesize_adult(crate::adult::ADULT_RECORDS, seed),
            false,
        ))
    }
}

/// Same pattern for NLTCS (`nltcs.csv`: 16 comma-separated 0/1 per line).
pub fn nltcs_records_or_synthetic(
    path: &Path,
    seed: u64,
) -> Result<(Vec<Vec<usize>>, bool), DataError> {
    if path.exists() {
        let content = std::fs::read_to_string(path)?;
        Ok((crate::nltcs::parse_nltcs_csv(&content)?, true))
    } else {
        Ok((
            crate::nltcs::synthesize_nltcs(crate::nltcs::NLTCS_RECORDS, seed),
            false,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_falls_back_to_synthesis() {
        let (recs, real) =
            adult_records_or_synthetic(Path::new("/nonexistent/adult.data"), 1).unwrap();
        assert!(!real);
        assert_eq!(recs.len(), crate::adult::ADULT_RECORDS);
        let (recs, real) =
            nltcs_records_or_synthetic(Path::new("/nonexistent/nltcs.csv"), 1).unwrap();
        assert!(!real);
        assert_eq!(recs.len(), crate::nltcs::NLTCS_RECORDS);
    }

    #[test]
    fn present_file_is_parsed() {
        let dir = std::env::temp_dir().join("dp_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("nltcs.csv");
        std::fs::write(&p, "0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n").unwrap();
        let (recs, real) = nltcs_records_or_synthetic(&p, 1).unwrap();
        assert!(real);
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&p).unwrap();
    }
}
