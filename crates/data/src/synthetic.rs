//! Generic building blocks for synthetic categorical data.

use rand::Rng;

/// A discrete distribution over `0..weights.len()`, sampled by inverse CDF.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds the distribution from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    /// Panics if weights are empty, contain a negative value, or sum to 0 —
    /// generator tables are static program data, so this is a programmer
    /// error, not an input-validation condition.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty categorical distribution");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative categorical weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "categorical weights sum to zero");
        Categorical { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True iff the distribution has no categories (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen::<f64>() * total;
        // Binary search for the first cumulative weight > u.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite weights"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

/// Skews a base weight vector by raising each weight to `power` — a quick
/// way to generate Zipf-ish attribute marginals from uniform ones.
pub fn skew(weights: &[f64], power: f64) -> Vec<f64> {
    weights.iter().map(|w| w.powf(power)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_respects_weights() {
        let c = Categorical::new(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let ones = (0..n).filter(|_| c.sample(&mut rng) == 1).count();
        let p = ones as f64 / n as f64;
        assert!((p - 0.75).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let c = Categorical::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category() {
        let c = Categorical::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(c.sample(&mut rng), 0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn all_zero_weights_panic() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_weights_panic() {
        Categorical::new(&[]);
    }

    #[test]
    fn skew_sharpens() {
        let s = skew(&[1.0, 2.0], 2.0);
        assert_eq!(s, vec![1.0, 4.0]);
    }
}
