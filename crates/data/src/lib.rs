//! Dataset substrate for the datacube-DP workspace.
//!
//! The paper evaluates on two real datasets we cannot fetch in this
//! environment, so this crate provides **synthetic stand-ins with the same
//! schema, size and correlation structure** (see DESIGN.md §3 for the
//! substitution argument), plus CSV loaders so the real files can be
//! dropped in:
//!
//! * [`adult`] — the UCI *Adult* census subset used in Section 5.1: 32,561
//!   records over 8 categorical attributes with cardinalities
//!   9, 16, 7, 15, 6, 5, 2, 2 (23 encoded bits).
//! * [`nltcs`] — the StatLib *NLTCS* disability study used in Section 5.2:
//!   21,576 records over 16 binary attributes (6 ADL + 10 IADL items).
//!
//! Both generators are deterministic given a seed, skewed, and strongly
//! correlated across attributes — the properties that drive the relative
//! behaviour of the release strategies under test.

pub mod adult;
pub mod csv;
pub mod nltcs;
pub mod synthetic;

pub use adult::{adult_schema, synthesize_adult};
pub use nltcs::{nltcs_schema, synthesize_nltcs};

/// Errors from dataset loading/synthesis.
#[derive(Debug)]
pub enum DataError {
    /// I/O failure while reading a dataset file.
    Io(std::io::Error),
    /// A CSV record could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Schema-level failure.
    Schema(dp_core::schema::SchemaError),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Parse { line, message } => write!(f, "line {line}: {message}"),
            DataError::Schema(e) => write!(f, "schema error: {e}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<dp_core::schema::SchemaError> for DataError {
    fn from(e: dp_core::schema::SchemaError) -> Self {
        DataError::Schema(e)
    }
}
