//! Synthetic stand-in for the **NLTCS** (National Long-Term Care Survey)
//! dataset (Section 5.2 of the paper), plus a loader for a binary CSV.
//!
//! The real data has 21,576 records over 16 binary functional-disability
//! indicators: 6 activities of daily living (ADL) and 10 instrumental
//! activities of daily living (IADL). Its defining structure — which the
//! generator reproduces — is a strongly bimodal population: a large mostly
//! healthy group (all-zero rows dominate) and a smaller disabled group with
//! strong positive correlation across items, with IADL limitations more
//! common than ADL ones.

use crate::DataError;
use dp_core::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of records in the real NLTCS extract (and the synthetic one).
pub const NLTCS_RECORDS: usize = 21_576;

/// Number of binary attributes.
pub const NLTCS_ATTRIBUTES: usize = 16;

/// The NLTCS schema: 16 binary attributes (6 ADL then 10 IADL), 16 bits.
pub fn nltcs_schema() -> Schema {
    Schema::binary(NLTCS_ATTRIBUTES).expect("16 binary attributes fit easily")
}

/// Generates `n` synthetic NLTCS-like records with a fixed seed, from a
/// three-component latent mixture (healthy / moderately / severely
/// disabled).
pub fn synthesize_nltcs(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    // (mixture weight, ADL base rate, IADL base rate).
    const COMPONENTS: [(f64, f64, f64); 3] = [
        (0.62, 0.015, 0.05), // healthy
        (0.26, 0.18, 0.38),  // moderate limitations
        (0.12, 0.62, 0.82),  // severe limitations
    ];
    // Mild per-item heterogeneity so item marginals differ.
    let item_factor: Vec<f64> = (0..NLTCS_ATTRIBUTES)
        .map(|i| 0.7 + 0.6 * ((i * 37 % 11) as f64 / 10.0))
        .collect();

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let (_, adl, iadl) = if u < COMPONENTS[0].0 {
            COMPONENTS[0]
        } else if u < COMPONENTS[0].0 + COMPONENTS[1].0 {
            COMPONENTS[1]
        } else {
            COMPONENTS[2]
        };
        let rec: Vec<usize> = (0..NLTCS_ATTRIBUTES)
            .map(|i| {
                let base = if i < 6 { adl } else { iadl };
                let p = (base * item_factor[i]).min(0.95);
                usize::from(rng.gen::<f64>() < p)
            })
            .collect();
        out.push(rec);
    }
    out
}

/// Parses a CSV of 16 comma-separated 0/1 values per line.
pub fn parse_nltcs_csv(content: &str) -> Result<Vec<Vec<usize>>, DataError> {
    let mut out = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != NLTCS_ATTRIBUTES {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("expected 16 fields, found {}", fields.len()),
            });
        }
        let rec = fields
            .iter()
            .map(|f| match *f {
                "0" => Ok(0usize),
                "1" => Ok(1usize),
                other => Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("expected 0/1, found {other:?}"),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::table::ContingencyTable;

    #[test]
    fn schema_shape() {
        let s = nltcs_schema();
        assert_eq!(s.num_attributes(), 16);
        assert_eq!(s.domain_bits(), 16);
        assert_eq!(s.domain_size(), 65_536);
    }

    #[test]
    fn synthesis_deterministic_and_binary() {
        let a = synthesize_nltcs(1000, 9);
        assert_eq!(a, synthesize_nltcs(1000, 9));
        assert!(a.iter().all(|r| r.len() == 16 && r.iter().all(|&v| v <= 1)));
    }

    #[test]
    fn healthy_majority_and_positive_correlation() {
        let recs = synthesize_nltcs(30_000, 3);
        // All-zero rows are the single most common pattern.
        let zeros = recs.iter().filter(|r| r.iter().all(|&v| v == 0)).count();
        assert!(
            zeros as f64 / recs.len() as f64 > 0.3,
            "all-zero fraction {}",
            zeros as f64 / recs.len() as f64
        );
        // Positive pairwise correlation between the first two items.
        let p0 = recs.iter().filter(|r| r[0] == 1).count() as f64 / recs.len() as f64;
        let p1 = recs.iter().filter(|r| r[1] == 1).count() as f64 / recs.len() as f64;
        let p01 = recs.iter().filter(|r| r[0] == 1 && r[1] == 1).count() as f64 / recs.len() as f64;
        assert!(p01 > 1.5 * p0 * p1, "p01={p01}, p0·p1={}", p0 * p1);
    }

    #[test]
    fn iadl_more_common_than_adl() {
        let recs = synthesize_nltcs(30_000, 4);
        let adl: usize = recs.iter().map(|r| r[..6].iter().sum::<usize>()).sum();
        let iadl: usize = recs.iter().map(|r| r[6..].iter().sum::<usize>()).sum();
        assert!(iadl as f64 / 10.0 > adl as f64 / 6.0);
    }

    #[test]
    fn table_construction() {
        let recs = synthesize_nltcs(500, 5);
        let t = ContingencyTable::from_records(&nltcs_schema(), &recs).unwrap();
        assert_eq!(t.total(), 500.0);
    }

    #[test]
    fn csv_roundtrip_and_errors() {
        let good = "0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1\n1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1\n";
        let recs = parse_nltcs_csv(good).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0][1], 1);
        assert!(parse_nltcs_csv("0,1").is_err());
        assert!(parse_nltcs_csv("0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,2").is_err());
    }
}
