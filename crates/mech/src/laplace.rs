//! The Laplace mechanism (Theorem 2.1 of the paper).

use crate::NoiseMechanism;
use rand::Rng;

/// Samples from the Laplace distribution with location 0 and the given
/// `scale` (density `exp(−|x|/scale) / (2·scale)`), via inverse-CDF
/// transform sampling. Variance is `2·scale²`. Every sample is finite.
pub fn sample_laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    // u is uniform in [-0.5, 0.5): the *closed* lower bound makes
    // 1 − 2|u| = 0 reachable (u = −0.5, probability 2⁻⁵³), so the log
    // argument is clamped to the smallest positive normal. Every other
    // reachable argument is at least 2⁻⁵² ≫ MIN_POSITIVE, so the clamp is
    // the identity for them and changes no other sample.
    let u: f64 = rng.gen::<f64>() - 0.5;
    if u == 0.0 {
        return 0.0;
    }
    let magnitude = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
    -scale * magnitude.copysign(u)
}

/// The Laplace scale required for `eps`-DP at L1-sensitivity `delta1`.
pub fn laplace_scale(delta1: f64, eps: f64) -> f64 {
    delta1 / eps
}

/// Laplace mechanism with the paper's per-row budget convention
/// (Proposition 3.1(i)): a row with budget `ε_i` gets noise with scale
/// `1/ε_i` and hence variance `2/ε_i²`. Sensitivity is accounted for in the
/// budget-feasibility constraint `Σ_i |S_ij| ε_i ≤ ε`, not here.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceMechanism;

impl NoiseMechanism for LaplaceMechanism {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, eps_i: f64) -> f64 {
        sample_laplace(rng, 1.0 / eps_i)
    }

    fn variance(&self, eps_i: f64) -> f64 {
        2.0 / (eps_i * eps_i)
    }

    fn name(&self) -> &'static str {
        "laplace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scale_formula() {
        assert_eq!(laplace_scale(2.0, 0.5), 4.0);
    }

    #[test]
    fn variance_formula() {
        let m = LaplaceMechanism;
        assert!((m.variance(2.0) - 0.5).abs() < 1e-15);
        assert_eq!(m.name(), "laplace");
    }

    #[test]
    fn samples_are_symmetric_and_zero_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_laplace(&mut rng, 1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sample_tail_behaviour() {
        // P(|X| > t·scale) = exp(−t); check roughly at t = 2.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let count = (0..n)
            .filter(|_| sample_laplace(&mut rng, 1.0).abs() > 2.0)
            .count();
        let p = count as f64 / n as f64;
        let expected = (-2.0_f64).exp();
        assert!((p - expected).abs() < 0.01, "p {p} vs {expected}");
    }

    #[test]
    fn scale_scales_linearly() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let spread: f64 = (0..n)
            .map(|_| sample_laplace(&mut rng, 3.0).abs())
            .sum::<f64>()
            / n as f64;
        // E|X| = scale.
        assert!((spread - 3.0).abs() < 0.1, "E|X| {spread}");
    }

    #[test]
    fn uniform_edge_draws_are_pinned_and_finite() {
        use crate::testutil::ConstRng;
        // next_u64 = 0 → gen::<f64>() = 0.0 → u = −0.5: the draw that made
        // the old sampler return −∞·copysign — now clamped to the largest
        // finite magnitude, |ln(MIN_POSITIVE)|·scale, with the sign of u.
        let v = sample_laplace(&mut ConstRng(0), 2.0);
        assert!(v.is_finite());
        assert_eq!(v, -2.0 * f64::MIN_POSITIVE.ln());
        // next_u64 = 1 << 63 → gen::<f64>() = 0.5 → u = 0.0: the symmetric
        // midpoint maps to exactly zero noise.
        assert_eq!(sample_laplace(&mut ConstRng(1 << 63), 2.0), 0.0);
    }

    #[test]
    fn near_edge_draws_are_unchanged_by_the_clamp() {
        use crate::testutil::ConstRng;
        // The smallest uniform above zero (next_u64 = 1 << 11 → gen = 2⁻⁵³)
        // gives the most extreme draw the old sampler handled; the clamp
        // must be the identity there: ln(1 − 2(½ − 2⁻⁵³)) = ln(2⁻⁵²).
        let v = sample_laplace(&mut ConstRng(1 << 11), 1.0);
        assert_eq!(v, -(2f64.powi(-52).ln()));
    }

    proptest::proptest! {
        #[test]
        fn samples_are_finite(seed in 0u64..1000, scale in 0.01f64..100.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = sample_laplace(&mut rng, scale);
            proptest::prop_assert!(v.is_finite());
        }
    }
}
