//! Sequential composition of differential-privacy guarantees.
//!
//! The paper's framework composes per-row guarantees through the column
//! structure of the strategy matrix (Proposition 3.1); this module provides
//! the standard *sequential* composition used when a data owner runs
//! several independent releases over the same data — e.g. releasing two
//! different workloads, or combining a marginal release with a range-query
//! release. It implements basic composition (ε and δ add) and tracks a
//! budget ledger so over-spending is a hard error rather than a silent
//! privacy failure.

use crate::privacy::PrivacyLevel;
use crate::MechError;

/// Sum of guarantees under basic sequential composition: ε's and δ's add.
pub fn compose(levels: &[PrivacyLevel]) -> PrivacyLevel {
    let epsilon: f64 = levels.iter().map(|l| l.epsilon()).sum();
    let delta: f64 = levels.iter().map(|l| l.delta()).sum();
    if delta == 0.0 {
        PrivacyLevel::Pure { epsilon }
    } else {
        PrivacyLevel::Approx { epsilon, delta }
    }
}

/// A privacy-budget ledger: start with a total allowance, draw per-release
/// budgets from it, and refuse once exhausted.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: PrivacyLevel,
    spent_epsilon: f64,
    spent_delta: f64,
    charges: Vec<PrivacyLevel>,
}

impl BudgetLedger {
    /// Creates a ledger with the given total allowance.
    pub fn new(total: PrivacyLevel) -> Result<Self, MechError> {
        total.validate()?;
        Ok(BudgetLedger {
            total,
            spent_epsilon: 0.0,
            spent_delta: 0.0,
            charges: Vec::new(),
        })
    }

    /// Attempts to charge one release's guarantee against the ledger.
    /// Fails (leaving the ledger unchanged) if the charge would exceed the
    /// allowance in either ε or δ.
    pub fn charge(&mut self, level: PrivacyLevel) -> Result<(), MechError> {
        level.validate()?;
        let new_eps = self.spent_epsilon + level.epsilon();
        let new_delta = self.spent_delta + level.delta();
        if new_eps > self.total.epsilon() * (1.0 + 1e-12) {
            return Err(MechError::InvalidPrivacyParameter(format!(
                "epsilon budget exhausted: spending {new_eps} of {}",
                self.total.epsilon()
            )));
        }
        if new_delta > self.total.delta() * (1.0 + 1e-12) + f64::EPSILON * 0.0
            && new_delta > self.total.delta()
        {
            return Err(MechError::InvalidPrivacyParameter(format!(
                "delta budget exhausted: spending {new_delta} of {}",
                self.total.delta()
            )));
        }
        self.spent_epsilon = new_eps;
        self.spent_delta = new_delta;
        self.charges.push(level);
        Ok(())
    }

    /// Remaining ε allowance.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.total.epsilon() - self.spent_epsilon).max(0.0)
    }

    /// Remaining δ allowance.
    pub fn remaining_delta(&self) -> f64 {
        (self.total.delta() - self.spent_delta).max(0.0)
    }

    /// The composed guarantee of everything charged so far.
    pub fn spent(&self) -> PrivacyLevel {
        compose(&self.charges)
    }

    /// Number of releases charged.
    pub fn num_charges(&self) -> usize {
        self.charges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_pure_levels() {
        let c = compose(&[
            PrivacyLevel::Pure { epsilon: 0.3 },
            PrivacyLevel::Pure { epsilon: 0.2 },
        ]);
        assert_eq!(c, PrivacyLevel::Pure { epsilon: 0.5 });
    }

    #[test]
    fn compose_mixed_levels_yields_approx() {
        let c = compose(&[
            PrivacyLevel::Pure { epsilon: 0.3 },
            PrivacyLevel::Approx {
                epsilon: 0.2,
                delta: 1e-6,
            },
        ]);
        assert_eq!(
            c,
            PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 1e-6
            }
        );
    }

    #[test]
    fn ledger_enforces_epsilon_budget() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        ledger.charge(PrivacyLevel::Pure { epsilon: 0.6 }).unwrap();
        assert!((ledger.remaining_epsilon() - 0.4).abs() < 1e-12);
        // Over-charge refused, state unchanged.
        assert!(ledger.charge(PrivacyLevel::Pure { epsilon: 0.5 }).is_err());
        assert!((ledger.remaining_epsilon() - 0.4).abs() < 1e-12);
        ledger.charge(PrivacyLevel::Pure { epsilon: 0.4 }).unwrap();
        assert_eq!(ledger.num_charges(), 2);
        assert_eq!(ledger.spent(), PrivacyLevel::Pure { epsilon: 1.0 });
    }

    #[test]
    fn ledger_enforces_delta_budget() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Approx {
            epsilon: 2.0,
            delta: 1e-6,
        })
        .unwrap();
        ledger
            .charge(PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 8e-7,
            })
            .unwrap();
        // ε fits but δ does not.
        assert!(ledger
            .charge(PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 8e-7,
            })
            .is_err());
        // A pure charge still fits.
        ledger.charge(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        assert!((ledger.remaining_delta() - 2e-7).abs() < 1e-18);
    }

    #[test]
    fn pure_ledger_rejects_any_delta() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        assert!(ledger
            .charge(PrivacyLevel::Approx {
                epsilon: 0.1,
                delta: 1e-9,
            })
            .is_err());
    }

    #[test]
    fn invalid_total_rejected() {
        assert!(BudgetLedger::new(PrivacyLevel::Pure { epsilon: 0.0 }).is_err());
    }
}
