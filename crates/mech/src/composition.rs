//! Sequential composition of differential-privacy guarantees.
//!
//! The paper's framework composes per-row guarantees through the column
//! structure of the strategy matrix (Proposition 3.1); this module provides
//! the standard *sequential* composition used when a data owner runs
//! several independent releases over the same data — e.g. releasing two
//! different workloads, or combining a marginal release with a range-query
//! release. It implements basic composition (ε and δ add) and tracks a
//! budget ledger so over-spending is a hard error rather than a silent
//! privacy failure.

use crate::privacy::PrivacyLevel;
use crate::MechError;

/// `n`-fold basic composition of one guarantee: ε and δ scale by `n` (the
/// charge for a batch of `n` independent releases from the same plan).
pub fn compose_n(level: PrivacyLevel, n: usize) -> PrivacyLevel {
    let epsilon = level.epsilon() * n as f64;
    let delta = level.delta() * n as f64;
    if delta == 0.0 {
        PrivacyLevel::Pure { epsilon }
    } else {
        PrivacyLevel::Approx { epsilon, delta }
    }
}

/// Sum of guarantees under basic sequential composition: ε's and δ's add.
pub fn compose(levels: &[PrivacyLevel]) -> PrivacyLevel {
    let epsilon: f64 = levels.iter().map(|l| l.epsilon()).sum();
    let delta: f64 = levels.iter().map(|l| l.delta()).sum();
    if delta == 0.0 {
        PrivacyLevel::Pure { epsilon }
    } else {
        PrivacyLevel::Approx { epsilon, delta }
    }
}

/// A privacy-budget ledger: start with a total allowance, draw per-release
/// budgets from it, and refuse once exhausted.
///
/// # Concurrency contract
///
/// A `BudgetLedger` is **single-threaded state**: it is `Send` but
/// deliberately offers no interior mutability, so concurrent metering must
/// wrap it in a lock (`Mutex<BudgetLedger>`) and perform the whole
/// check-and-debit under one critical section. [`BudgetLedger::try_spend`]
/// exists for exactly that shape — it checks *and* debits in a single call,
/// so a caller holding the lock has no TOCTOU window between reading
/// [`BudgetLedger::remaining_epsilon`] and committing the charge. Never
/// decide on `remaining_*()` in one critical section and `try_spend` in a
/// later one.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: PrivacyLevel,
    spent_epsilon: f64,
    spent_delta: f64,
    charges: Vec<PrivacyLevel>,
}

impl BudgetLedger {
    /// Creates a ledger with the given total allowance.
    pub fn new(total: PrivacyLevel) -> Result<Self, MechError> {
        total.validate()?;
        Ok(BudgetLedger {
            total,
            spent_epsilon: 0.0,
            spent_delta: 0.0,
            charges: Vec::new(),
        })
    }

    /// The total allowance the ledger was opened with.
    pub fn total(&self) -> PrivacyLevel {
        self.total
    }

    /// Checks **and** debits one charge in a single call — the atomic
    /// check-then-spend primitive. The charge is validated first (NaN,
    /// non-positive ε, or δ outside (0,1) are a typed
    /// [`MechError::InvalidPrivacyParameter`], never silently composed);
    /// if the composed spend would exceed the allowance in either ε or δ
    /// the ledger is left unchanged and a typed
    /// [`MechError::BudgetExhausted`] reports both the request and what
    /// remains.
    pub fn try_spend(&mut self, level: PrivacyLevel) -> Result<(), MechError> {
        level.validate()?;
        let new_eps = self.spent_epsilon + level.epsilon();
        let new_delta = self.spent_delta + level.delta();
        // A hair of multiplicative slack absorbs summation rounding so a
        // budget can be spent down to exactly 0 in equal slices.
        let eps_fits = new_eps <= self.total.epsilon() * (1.0 + 1e-12);
        let delta_fits = new_delta <= self.total.delta() * (1.0 + 1e-12);
        if !eps_fits || !delta_fits {
            return Err(MechError::BudgetExhausted {
                requested_epsilon: level.epsilon(),
                requested_delta: level.delta(),
                remaining_epsilon: self.remaining_epsilon(),
                remaining_delta: self.remaining_delta(),
            });
        }
        self.spent_epsilon = new_eps;
        self.spent_delta = new_delta;
        self.charges.push(level);
        Ok(())
    }

    /// Attempts to charge one release's guarantee against the ledger.
    /// Fails (leaving the ledger unchanged) if the charge would exceed the
    /// allowance in either ε or δ. Alias of [`BudgetLedger::try_spend`],
    /// kept for callers that predate it.
    pub fn charge(&mut self, level: PrivacyLevel) -> Result<(), MechError> {
        self.try_spend(level)
    }

    /// Remaining ε allowance.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.total.epsilon() - self.spent_epsilon).max(0.0)
    }

    /// Remaining δ allowance.
    pub fn remaining_delta(&self) -> f64 {
        (self.total.delta() - self.spent_delta).max(0.0)
    }

    /// The composed guarantee of everything charged so far.
    pub fn spent(&self) -> PrivacyLevel {
        compose(&self.charges)
    }

    /// Number of releases charged.
    pub fn num_charges(&self) -> usize {
        self.charges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_pure_levels() {
        let c = compose(&[
            PrivacyLevel::Pure { epsilon: 0.3 },
            PrivacyLevel::Pure { epsilon: 0.2 },
        ]);
        assert_eq!(c, PrivacyLevel::Pure { epsilon: 0.5 });
    }

    #[test]
    fn compose_mixed_levels_yields_approx() {
        let c = compose(&[
            PrivacyLevel::Pure { epsilon: 0.3 },
            PrivacyLevel::Approx {
                epsilon: 0.2,
                delta: 1e-6,
            },
        ]);
        assert_eq!(
            c,
            PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 1e-6
            }
        );
    }

    #[test]
    fn ledger_enforces_epsilon_budget() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        ledger.charge(PrivacyLevel::Pure { epsilon: 0.6 }).unwrap();
        assert!((ledger.remaining_epsilon() - 0.4).abs() < 1e-12);
        // Over-charge refused, state unchanged.
        assert!(ledger.charge(PrivacyLevel::Pure { epsilon: 0.5 }).is_err());
        assert!((ledger.remaining_epsilon() - 0.4).abs() < 1e-12);
        ledger.charge(PrivacyLevel::Pure { epsilon: 0.4 }).unwrap();
        assert_eq!(ledger.num_charges(), 2);
        assert_eq!(ledger.spent(), PrivacyLevel::Pure { epsilon: 1.0 });
    }

    #[test]
    fn ledger_enforces_delta_budget() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Approx {
            epsilon: 2.0,
            delta: 1e-6,
        })
        .unwrap();
        ledger
            .charge(PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 8e-7,
            })
            .unwrap();
        // ε fits but δ does not.
        assert!(ledger
            .charge(PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 8e-7,
            })
            .is_err());
        // A pure charge still fits.
        ledger.charge(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        assert!((ledger.remaining_delta() - 2e-7).abs() < 1e-18);
    }

    #[test]
    fn pure_ledger_rejects_any_delta() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        assert!(ledger
            .charge(PrivacyLevel::Approx {
                epsilon: 0.1,
                delta: 1e-9,
            })
            .is_err());
    }

    #[test]
    fn invalid_total_rejected() {
        assert!(BudgetLedger::new(PrivacyLevel::Pure { epsilon: 0.0 }).is_err());
    }

    #[test]
    fn try_spend_rejects_nan_and_negative_inputs_with_a_typed_error() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        for bad in [
            PrivacyLevel::Pure { epsilon: f64::NAN },
            PrivacyLevel::Pure { epsilon: -0.5 },
            PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: f64::NAN,
            },
            PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: -1e-6,
            },
        ] {
            assert!(
                matches!(
                    ledger.try_spend(bad),
                    Err(MechError::InvalidPrivacyParameter(_))
                ),
                "{bad:?} must be rejected before composing"
            );
        }
        // Nothing was silently composed.
        assert_eq!(ledger.num_charges(), 0);
        assert!((ledger.remaining_epsilon() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn try_spend_exhaustion_reports_request_and_remaining() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Approx {
            epsilon: 1.0,
            delta: 1e-6,
        })
        .unwrap();
        ledger
            .try_spend(PrivacyLevel::Approx {
                epsilon: 0.75,
                delta: 4e-7,
            })
            .unwrap();
        let err = ledger
            .try_spend(PrivacyLevel::Approx {
                epsilon: 0.5,
                delta: 1e-7,
            })
            .unwrap_err();
        let MechError::BudgetExhausted {
            requested_epsilon,
            requested_delta,
            remaining_epsilon,
            remaining_delta,
        } = err
        else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(requested_epsilon, 0.5);
        assert_eq!(requested_delta, 1e-7);
        assert!((remaining_epsilon - 0.25).abs() < 1e-12);
        assert!((remaining_delta - 6e-7).abs() < 1e-18);
        // The failed attempt left the ledger untouched; exhaustion is
        // permanent once remaining hits zero.
        assert_eq!(ledger.num_charges(), 1);
        ledger
            .try_spend(PrivacyLevel::Pure { epsilon: 0.25 })
            .unwrap();
        assert!(ledger.remaining_epsilon() <= 1e-12);
        assert!(matches!(
            ledger.try_spend(PrivacyLevel::Pure { epsilon: 1e-9 }),
            Err(MechError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn a_budget_spends_down_to_exactly_zero_in_equal_slices() {
        let mut ledger = BudgetLedger::new(PrivacyLevel::Pure { epsilon: 1.0 }).unwrap();
        for _ in 0..10 {
            ledger
                .try_spend(PrivacyLevel::Pure { epsilon: 0.1 })
                .unwrap();
        }
        assert!(ledger.remaining_epsilon() <= 1e-12);
        assert!(matches!(
            ledger.try_spend(PrivacyLevel::Pure { epsilon: 0.1 }),
            Err(MechError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn compose_n_scales_both_parameters() {
        assert_eq!(
            compose_n(PrivacyLevel::Pure { epsilon: 0.25 }, 4),
            PrivacyLevel::Pure { epsilon: 1.0 }
        );
        assert_eq!(
            compose_n(
                PrivacyLevel::Approx {
                    epsilon: 0.1,
                    delta: 1e-7
                },
                3
            ),
            PrivacyLevel::Approx {
                epsilon: 0.1 * 3.0,
                delta: 3e-7
            }
        );
    }
}
