//! The Gaussian mechanism (Theorem 2.2 of the paper).

use crate::NoiseMechanism;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Samples from the normal distribution with mean 0 and standard deviation
/// `sigma`.
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    Normal::new(0.0, sigma)
        .expect("sigma must be finite and non-negative")
        .sample(rng)
}

/// The Gaussian standard deviation required for `(eps, delta)`-DP at
/// L2-sensitivity `delta2`, per Theorem 2.2:
/// `σ² = 2 Δ₂² log(2/δ) / ε²`.
pub fn gaussian_sigma(delta2: f64, eps: f64, delta: f64) -> f64 {
    (2.0 * delta2 * delta2 * (2.0 / delta).ln() / (eps * eps)).sqrt()
}

/// Gaussian mechanism with the paper's per-row budget convention
/// (Proposition 3.1(ii)): a row with budget `ε_i` gets noise with variance
/// `2 log(2/δ) / ε_i²`. The overall `(α, δ)` guarantee follows from the
/// column constraint `√(Σ_i S_ij² ε_i²) ≤ α`.
#[derive(Debug, Clone, Copy)]
pub struct GaussianMechanism {
    /// The δ of the (ε,δ)-DP guarantee.
    pub delta: f64,
}

impl GaussianMechanism {
    /// Creates the mechanism, validating `0 < delta < 1`.
    pub fn new(delta: f64) -> Result<Self, crate::MechError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(crate::MechError::InvalidPrivacyParameter(format!(
                "delta must be in (0,1), got {delta}"
            )));
        }
        Ok(GaussianMechanism { delta })
    }
}

impl NoiseMechanism for GaussianMechanism {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, eps_i: f64) -> f64 {
        let variance = self.variance(eps_i);
        sample_gaussian(rng, variance.sqrt())
    }

    fn variance(&self, eps_i: f64) -> f64 {
        2.0 * (2.0 / self.delta).ln() / (eps_i * eps_i)
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_formula() {
        let sigma = gaussian_sigma(1.0, 1.0, 0.5);
        assert!((sigma * sigma - 2.0 * (4.0_f64).ln() / 2.0_f64.powi(0)).abs() < 1e-12);
    }

    #[test]
    fn invalid_delta_is_rejected() {
        assert!(GaussianMechanism::new(0.0).is_err());
        assert!(GaussianMechanism::new(1.0).is_err());
        assert!(GaussianMechanism::new(-0.1).is_err());
        assert!(GaussianMechanism::new(1e-6).is_ok());
    }

    #[test]
    fn variance_formula() {
        let m = GaussianMechanism::new(0.01).unwrap();
        let expected = 2.0 * (200.0_f64).ln() / 4.0;
        assert!((m.variance(2.0) - expected).abs() < 1e-12);
        assert_eq!(m.name(), "gaussian");
    }

    #[test]
    fn empirical_variance_matches() {
        let m = GaussianMechanism::new(1e-5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let eps = 1.0;
        let n = 100_000;
        let ms: f64 = (0..n)
            .map(|_| {
                let v = m.sample(&mut rng, eps);
                v * v
            })
            .sum::<f64>()
            / n as f64;
        let expected = m.variance(eps);
        assert!((ms - expected).abs() / expected < 0.05);
    }

    #[test]
    fn zero_mean() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sample_gaussian(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05);
    }
}
