//! Differential-privacy mechanisms.
//!
//! Implements the primitives of Section 2 of the paper and the per-row noise
//! generation of Proposition 3.1:
//!
//! * [`laplace`] — the Laplace mechanism (Theorem 2.1): pure ε-DP by adding
//!   noise of variance `2 (Δ₁/ε)²`.
//! * [`gaussian`] — the Gaussian mechanism (Theorem 2.2): (ε,δ)-DP by adding
//!   noise of variance `2 Δ₂² log(2/δ) / ε²`.
//! * [`privacy`] — privacy parameters, neighbouring-dataset conventions and
//!   budget-feasibility verification.
//!
//! ## Neighbouring convention
//!
//! The paper's worked example and experiments compute sensitivity as the
//! maximum column norm of the query matrix — i.e. *add/remove-one*
//! neighbours where one individual contributes weight 1 to a single entry of
//! the data vector `x`. Proposition 3.1 as printed carries an extra factor 2
//! corresponding to *replace-one* neighbours (one record changing its
//! attribute values moves two cells). Both conventions are supported via
//! [`privacy::Neighboring`]; the default, [`privacy::Neighboring::AddRemove`],
//! reproduces the paper's numbers (e.g. variance `8/ε²` for the query matrix
//! of Figure 1(b)).

// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which is the point of these validation checks.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod batch;
pub mod composition;
pub mod gaussian;
pub mod laplace;
pub mod privacy;

pub use batch::{add_gaussian_into, add_laplace_into, sample_gaussian_into, sample_laplace_into};
pub use composition::{compose, compose_n, BudgetLedger};
pub use gaussian::{gaussian_sigma, sample_gaussian, GaussianMechanism};
pub use laplace::{laplace_scale, sample_laplace, LaplaceMechanism};
pub use privacy::{BudgetFeasibility, Neighboring, PrivacyLevel};

#[cfg(test)]
pub(crate) mod testutil {
    /// An RNG emitting one constant word forever — used to pin the exact
    /// uniform-draw edge cases (`u = 0.0`, `u = −0.5`) in sampler tests.
    pub struct ConstRng(pub u64);

    impl rand::RngCore for ConstRng {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }
}

use rand::Rng;

/// A noise-addition mechanism that perturbs a vector of exact answers.
///
/// The per-row budgets `ε_i` follow Proposition 3.1: row `i` of the strategy
/// receives noise whose magnitude is calibrated to `ε_i` alone; the *overall*
/// guarantee is determined by how the budgets interact with the strategy
/// matrix columns (checked separately by
/// [`privacy::BudgetFeasibility`]-producing code in `dp-core`).
pub trait NoiseMechanism {
    /// Draws one noise value for a row with budget `eps_i`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, eps_i: f64) -> f64;

    /// The variance of the noise added to a row with budget `eps_i`.
    fn variance(&self, eps_i: f64) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Adds mechanism noise to `answers` in place, one budget per entry.
///
/// Returns an error message if the lengths differ or any budget is
/// non-positive (a zero budget would require infinite noise).
pub fn perturb_in_place<M: NoiseMechanism, R: Rng + ?Sized>(
    mechanism: &M,
    rng: &mut R,
    answers: &mut [f64],
    budgets: &[f64],
) -> Result<(), MechError> {
    if answers.len() != budgets.len() {
        return Err(MechError::LengthMismatch {
            answers: answers.len(),
            budgets: budgets.len(),
        });
    }
    for (a, &eps) in answers.iter_mut().zip(budgets) {
        if !(eps > 0.0) {
            return Err(MechError::NonPositiveBudget(eps));
        }
        *a += mechanism.sample(rng, eps);
    }
    Ok(())
}

/// Errors from mechanism application.
#[derive(Debug, Clone, PartialEq)]
pub enum MechError {
    /// `answers` and `budgets` had different lengths.
    LengthMismatch {
        /// Length of the answer vector.
        answers: usize,
        /// Length of the budget vector.
        budgets: usize,
    },
    /// A per-row budget was zero or negative.
    NonPositiveBudget(f64),
    /// A privacy parameter was invalid (e.g. ε ≤ 0 or δ ∉ (0,1)).
    InvalidPrivacyParameter(String),
    /// A [`composition::BudgetLedger`] charge would exceed the remaining
    /// allowance. Carries what was asked for and what is still available so
    /// callers (e.g. a release service) can report the shortfall precisely.
    BudgetExhausted {
        /// ε the rejected charge asked for.
        requested_epsilon: f64,
        /// δ the rejected charge asked for.
        requested_delta: f64,
        /// ε still available in the ledger.
        remaining_epsilon: f64,
        /// δ still available in the ledger.
        remaining_delta: f64,
    },
}

impl std::fmt::Display for MechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechError::LengthMismatch { answers, budgets } => write!(
                f,
                "answers ({answers}) and budgets ({budgets}) length mismatch"
            ),
            MechError::NonPositiveBudget(b) => write!(f, "non-positive noise budget {b}"),
            MechError::InvalidPrivacyParameter(msg) => {
                write!(f, "invalid privacy parameter: {msg}")
            }
            MechError::BudgetExhausted {
                requested_epsilon,
                requested_delta,
                remaining_epsilon,
                remaining_delta,
            } => write!(
                f,
                "privacy budget exhausted: requested (ε = {requested_epsilon}, δ = \
                 {requested_delta}) but only (ε = {remaining_epsilon}, δ = \
                 {remaining_delta}) remains"
            ),
        }
    }
}

impl std::error::Error for MechError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perturb_changes_values_and_respects_lengths() {
        let mech = LaplaceMechanism;
        let mut rng = StdRng::seed_from_u64(7);
        let mut answers = vec![10.0, 20.0, 30.0];
        perturb_in_place(&mech, &mut rng, &mut answers, &[1.0, 1.0, 1.0]).unwrap();
        assert!(answers.iter().zip([10.0, 20.0, 30.0]).any(|(a, b)| *a != b));

        let mut short = vec![1.0];
        assert!(matches!(
            perturb_in_place(&mech, &mut rng, &mut short, &[1.0, 2.0]),
            Err(MechError::LengthMismatch { .. })
        ));
        assert!(matches!(
            perturb_in_place(&mech, &mut rng, &mut short, &[0.0]),
            Err(MechError::NonPositiveBudget(_))
        ));
    }

    #[test]
    fn error_messages_render() {
        assert!(MechError::NonPositiveBudget(-1.0)
            .to_string()
            .contains("-1"));
        assert!(MechError::LengthMismatch {
            answers: 1,
            budgets: 2
        }
        .to_string()
        .contains("mismatch"));
        assert!(MechError::InvalidPrivacyParameter("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn empirical_variance_tracks_formula() {
        // Sample mean-square of Laplace noise should approach 2/ε².
        let mech = LaplaceMechanism;
        let mut rng = StdRng::seed_from_u64(42);
        let eps = 0.5;
        let n = 200_000;
        let ms: f64 = (0..n)
            .map(|_| {
                let v = mech.sample(&mut rng, eps);
                v * v
            })
            .sum::<f64>()
            / n as f64;
        let expected = mech.variance(eps);
        assert!(
            (ms - expected).abs() / expected < 0.05,
            "empirical {ms} vs formula {expected}"
        );
    }
}
