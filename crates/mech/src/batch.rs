//! Batched noise samplers for the fused release hot path.
//!
//! The engine's perturbation pass groups observation rows into long runs
//! that share one mechanism and one noise parameter, so the per-value work
//! of the scalar path — re-deriving `σ` from the budget, re-validating the
//! distribution, matching on the mechanism — can be hoisted out of the
//! loop and done once per run. These functions do exactly that hoisting and
//! nothing else: each consumes the RNG stream **value-for-value identically**
//! to calling the scalar sampler in a loop, so a release produced through
//! the batched path is byte-identical to one produced through per-value
//! sampling (asserted by the proptests below).

use crate::sample_laplace;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Fills `out` with Laplace samples of the given `scale`, one per element,
/// drawn in index order.
pub fn sample_laplace_into<R: Rng + ?Sized>(rng: &mut R, scale: f64, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = sample_laplace(rng, scale);
    }
}

/// Adds one Laplace sample of the given `scale` to each element of
/// `values`, in index order.
pub fn add_laplace_into<R: Rng + ?Sized>(rng: &mut R, scale: f64, values: &mut [f64]) {
    for v in values.iter_mut() {
        *v += sample_laplace(rng, scale);
    }
}

/// Fills `out` with `N(0, sigma²)` samples, one per element, drawn in index
/// order. The distribution is constructed (and validated) once for the
/// whole batch; each draw then performs the identical Box–Muller transform
/// as [`crate::sample_gaussian`], consuming two RNG words per sample.
///
/// # Panics
/// Panics if `sigma` is negative or not finite, exactly as
/// [`crate::sample_gaussian`] does per value.
pub fn sample_gaussian_into<R: Rng + ?Sized>(rng: &mut R, sigma: f64, out: &mut [f64]) {
    let normal = Normal::new(0.0, sigma).expect("sigma must be finite and non-negative");
    for v in out.iter_mut() {
        *v = normal.sample(rng);
    }
}

/// Adds one `N(0, sigma²)` sample to each element of `values`, in index
/// order, with the distribution constructed once for the whole batch.
///
/// # Panics
/// Panics if `sigma` is negative or not finite.
pub fn add_gaussian_into<R: Rng + ?Sized>(rng: &mut R, sigma: f64, values: &mut [f64]) {
    let normal = Normal::new(0.0, sigma).expect("sigma must be finite and non-negative");
    for v in values.iter_mut() {
        *v += normal.sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_gaussian;
    use crate::testutil::ConstRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest::proptest! {
        /// The batched Laplace sampler reproduces the scalar sampler's byte
        /// stream for arbitrary lengths, seeds, and scales.
        #[test]
        fn laplace_into_matches_scalar_stream(
            seed in 0u64..10_000,
            len in 0usize..300,
            scale in 0.01f64..50.0,
        ) {
            let mut batched = vec![0.0; len];
            sample_laplace_into(&mut StdRng::seed_from_u64(seed), scale, &mut batched);
            let mut rng = StdRng::seed_from_u64(seed);
            let scalar: Vec<f64> = (0..len).map(|_| sample_laplace(&mut rng, scale)).collect();
            proptest::prop_assert_eq!(batched, scalar);
        }

        /// The batched Gaussian sampler reproduces the scalar sampler's byte
        /// stream for arbitrary lengths, seeds, and sigmas.
        #[test]
        fn gaussian_into_matches_scalar_stream(
            seed in 0u64..10_000,
            len in 0usize..300,
            sigma in 0.01f64..50.0,
        ) {
            let mut batched = vec![0.0; len];
            sample_gaussian_into(&mut StdRng::seed_from_u64(seed), sigma, &mut batched);
            let mut rng = StdRng::seed_from_u64(seed);
            let scalar: Vec<f64> = (0..len).map(|_| sample_gaussian(&mut rng, sigma)).collect();
            proptest::prop_assert_eq!(batched, scalar);
        }

        /// The add-in-place variants equal value + the corresponding fresh
        /// sample, bit-for-bit, for both mechanisms.
        #[test]
        fn add_variants_match_value_plus_sample(
            seed in 0u64..10_000,
            len in 0usize..200,
        ) {
            let base: Vec<f64> = (0..len).map(|i| (i as f64) * 0.73 - 40.0).collect();

            let mut added = base.clone();
            add_laplace_into(&mut StdRng::seed_from_u64(seed), 1.5, &mut added);
            let mut fresh = vec![0.0; len];
            sample_laplace_into(&mut StdRng::seed_from_u64(seed), 1.5, &mut fresh);
            for i in 0..len {
                proptest::prop_assert_eq!(added[i], base[i] + fresh[i]);
            }

            let mut added = base.clone();
            add_gaussian_into(&mut StdRng::seed_from_u64(seed), 2.5, &mut added);
            let mut fresh = vec![0.0; len];
            sample_gaussian_into(&mut StdRng::seed_from_u64(seed), 2.5, &mut fresh);
            for i in 0..len {
                proptest::prop_assert_eq!(added[i], base[i] + fresh[i]);
            }
        }
    }

    #[test]
    fn batched_laplace_is_finite_at_uniform_edges() {
        // next_u64 = 0 pins every uniform draw to 0.0, i.e. u = −0.5 — the
        // ln(0) edge the clamped sampler must survive.
        let mut out = vec![f64::NAN; 8];
        sample_laplace_into(&mut ConstRng(0), 1.0, &mut out);
        for &v in &out {
            assert!(v.is_finite());
            assert_eq!(v, -f64::MIN_POSITIVE.ln());
        }
    }

    #[test]
    fn empirical_moments_survive_batching() {
        let n = 100_000;
        let mut lap = vec![0.0; n];
        sample_laplace_into(&mut StdRng::seed_from_u64(5), 2.0, &mut lap);
        let ms = lap.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((ms - 8.0).abs() / 8.0 < 0.05, "Laplace E[X²] {ms} vs 8");

        let mut gau = vec![0.0; n];
        sample_gaussian_into(&mut StdRng::seed_from_u64(6), 3.0, &mut gau);
        let ms = gau.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((ms - 9.0).abs() / 9.0 < 0.05, "Gaussian E[X²] {ms} vs 9");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_sigma_panics_like_the_scalar_sampler() {
        sample_gaussian_into(&mut StdRng::seed_from_u64(0), -1.0, &mut [0.0]);
    }
}
