//! Privacy parameters, neighbouring-dataset conventions and feasibility
//! verification for per-row noise budgets (Proposition 3.1 of the paper).

/// The convention for "neighbouring databases" in Definition 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Neighboring {
    /// One record is added or removed: exactly one entry of the data vector
    /// `x` changes by 1, so the L_p sensitivity of `f(x) = Sx` is the
    /// maximum column L_p norm of `S`. This is the convention the paper's
    /// worked example and experiments use.
    #[default]
    AddRemove,
    /// One record changes its attribute values: two entries of `x` change by
    /// 1 each, doubling the sensitivity (the factor 2 printed in
    /// Proposition 3.1).
    Replace,
}

impl Neighboring {
    /// Multiplicative factor applied to the column-norm sensitivity.
    #[inline]
    pub fn sensitivity_factor(self) -> f64 {
        match self {
            Neighboring::AddRemove => 1.0,
            Neighboring::Replace => 2.0,
        }
    }
}

/// The privacy guarantee the release must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrivacyLevel {
    /// Pure ε-differential privacy (Laplace mechanism).
    Pure {
        /// The ε of the guarantee.
        epsilon: f64,
    },
    /// Approximate (ε, δ)-differential privacy (Gaussian mechanism).
    Approx {
        /// The ε of the guarantee.
        epsilon: f64,
        /// The δ of the guarantee.
        delta: f64,
    },
}

impl PrivacyLevel {
    /// The ε of the guarantee.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        match *self {
            PrivacyLevel::Pure { epsilon } | PrivacyLevel::Approx { epsilon, .. } => epsilon,
        }
    }

    /// The δ of the guarantee (0 for pure DP).
    #[inline]
    pub fn delta(&self) -> f64 {
        match *self {
            PrivacyLevel::Pure { .. } => 0.0,
            PrivacyLevel::Approx { delta, .. } => delta,
        }
    }

    /// Validates the parameters (ε > 0; for approx DP, δ ∈ (0,1)).
    pub fn validate(&self) -> Result<(), crate::MechError> {
        let eps = self.epsilon();
        if !(eps > 0.0) || !eps.is_finite() {
            return Err(crate::MechError::InvalidPrivacyParameter(format!(
                "epsilon must be positive and finite, got {eps}"
            )));
        }
        if let PrivacyLevel::Approx { delta, .. } = *self {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(crate::MechError::InvalidPrivacyParameter(format!(
                    "delta must be in (0,1), got {delta}"
                )));
            }
        }
        Ok(())
    }
}

/// Result of verifying Proposition 3.1's feasibility constraint for a
/// concrete strategy matrix and budget vector.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetFeasibility {
    /// The worst (largest) column value of the constraint:
    /// `max_j Σ_i |S_ij| ε_i` for pure DP, `max_j √(Σ_i S_ij² ε_i²)` for
    /// approximate DP — *before* the neighbouring factor.
    pub achieved_epsilon: f64,
    /// The ε the release was supposed to satisfy.
    pub target_epsilon: f64,
    /// Whether the constraint holds up to a small numerical slack.
    pub feasible: bool,
}

/// Verifies the pure-DP feasibility constraint `Σ_i |S_ij| ε_i ≤ ε` per
/// column, where the strategy is given column-wise as
/// `columns[j] = [(row, |S_ij|), …]`.
pub fn verify_pure_budgets<'a>(
    columns: impl Iterator<Item = &'a [(usize, f64)]>,
    budgets: &[f64],
    target_epsilon: f64,
    neighboring: Neighboring,
) -> BudgetFeasibility {
    let mut worst = 0.0_f64;
    for col in columns {
        let s: f64 = col.iter().map(|&(i, a)| a.abs() * budgets[i]).sum();
        worst = worst.max(s);
    }
    let achieved = worst * neighboring.sensitivity_factor();
    BudgetFeasibility {
        achieved_epsilon: achieved,
        target_epsilon,
        feasible: achieved <= target_epsilon * (1.0 + 1e-9) + 1e-12,
    }
}

/// Verifies the approximate-DP feasibility constraint
/// `√(Σ_i S_ij² ε_i²) ≤ ε` per column (Proposition 3.1(ii)).
pub fn verify_approx_budgets<'a>(
    columns: impl Iterator<Item = &'a [(usize, f64)]>,
    budgets: &[f64],
    target_epsilon: f64,
    neighboring: Neighboring,
) -> BudgetFeasibility {
    let mut worst = 0.0_f64;
    for col in columns {
        let s: f64 = col
            .iter()
            .map(|&(i, a)| {
                let t = a * budgets[i];
                t * t
            })
            .sum();
        worst = worst.max(s.sqrt());
    }
    let achieved = worst * neighboring.sensitivity_factor();
    BudgetFeasibility {
        achieved_epsilon: achieved,
        target_epsilon,
        feasible: achieved <= target_epsilon * (1.0 + 1e-9) + 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighboring_factors() {
        assert_eq!(Neighboring::AddRemove.sensitivity_factor(), 1.0);
        assert_eq!(Neighboring::Replace.sensitivity_factor(), 2.0);
        assert_eq!(Neighboring::default(), Neighboring::AddRemove);
    }

    #[test]
    fn privacy_level_accessors() {
        let p = PrivacyLevel::Pure { epsilon: 0.5 };
        assert_eq!(p.epsilon(), 0.5);
        assert_eq!(p.delta(), 0.0);
        assert!(p.validate().is_ok());

        let a = PrivacyLevel::Approx {
            epsilon: 1.0,
            delta: 1e-5,
        };
        assert_eq!(a.epsilon(), 1.0);
        assert_eq!(a.delta(), 1e-5);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PrivacyLevel::Pure { epsilon: 0.0 }.validate().is_err());
        assert!(PrivacyLevel::Pure {
            epsilon: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(PrivacyLevel::Approx {
            epsilon: 1.0,
            delta: 0.0
        }
        .validate()
        .is_err());
        assert!(PrivacyLevel::Approx {
            epsilon: 1.0,
            delta: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn pure_feasibility_example_from_figure_1() {
        // Q from Figure 1(b): every column has one entry from the A-marginal
        // rows and one from the AB-marginal rows. Budgets 4ε/9 and 5ε/9 per
        // the worked example sum to exactly ε per column.
        let eps = 0.9;
        let budgets = vec![
            4.0 * eps / 9.0,
            4.0 * eps / 9.0,
            5.0 * eps / 9.0,
            5.0 * eps / 9.0,
            5.0 * eps / 9.0,
            5.0 * eps / 9.0,
        ];
        // Column pattern: rows {0 or 1} and one of {2..5}.
        let cols: Vec<Vec<(usize, f64)>> = (0..8)
            .map(|j| vec![(j / 4, 1.0), (2 + j / 2, 1.0)])
            .collect();
        let res = verify_pure_budgets(
            cols.iter().map(|c| c.as_slice()),
            &budgets,
            eps,
            Neighboring::AddRemove,
        );
        assert!(res.feasible, "{res:?}");
        assert!((res.achieved_epsilon - eps).abs() < 1e-12);
    }

    #[test]
    fn infeasible_budgets_are_flagged() {
        let cols = [vec![(0usize, 1.0), (1usize, 1.0)]];
        let res = verify_pure_budgets(
            cols.iter().map(|c| c.as_slice()),
            &[0.6, 0.6],
            1.0,
            Neighboring::AddRemove,
        );
        assert!(!res.feasible);
        assert!((res.achieved_epsilon - 1.2).abs() < 1e-12);
    }

    #[test]
    fn replace_doubles_achieved_epsilon() {
        let cols = [vec![(0usize, 1.0)]];
        let res = verify_pure_budgets(
            cols.iter().map(|c| c.as_slice()),
            &[1.0],
            1.0,
            Neighboring::Replace,
        );
        assert_eq!(res.achieved_epsilon, 2.0);
        assert!(!res.feasible);
    }

    #[test]
    fn approx_feasibility_uses_l2() {
        let cols = [vec![(0usize, 1.0), (1usize, 1.0)]];
        let res = verify_approx_budgets(
            cols.iter().map(|c| c.as_slice()),
            &[0.6, 0.8],
            1.0,
            Neighboring::AddRemove,
        );
        assert!((res.achieved_epsilon - 1.0).abs() < 1e-12);
        assert!(res.feasible);
    }
}
