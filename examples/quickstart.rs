//! Quickstart: release all 2-way marginals of a small synthetic dataset
//! with ε-differential privacy through the two-phase plan/session API —
//! compile a data-independent plan once, bind the data, draw a
//! deterministic batch of releases.
//!
//! Run with `cargo run --release --example quickstart`.

use datacube_dp::prelude::*;

fn main() {
    // A toy relation: 6 binary attributes, 1000 correlated records.
    let schema = Schema::binary(6).expect("6 binary attributes is a valid schema");
    let records: Vec<Vec<usize>> = (0..1000)
        .map(|i| {
            let base = (i * 7919) % 64;
            (0..6).map(|b| (base >> b) & 1).collect()
        })
        .collect();
    let table = ContingencyTable::from_records(&schema, &records).expect("records fit the schema");

    // The query workload: every 2-way marginal (15 contingency tables).
    let workload = Workload::all_k_way(&schema, 2).expect("2-way marginals exist over 6 attrs");
    println!(
        "workload: {} marginals, {} cells, |F| = {} Fourier coefficients",
        workload.len(),
        workload.total_cells(),
        workload.fourier_support().len()
    );

    // Phase 1 — no data in sight: compile the Fourier strategy with the
    // paper's optimal non-uniform budgets at ε = 0.5. The plan carries the
    // solved budgets, the achieved ε and per-marginal variance predictions.
    let plan = PlanBuilder::marginals(workload.clone(), StrategyKind::Fourier)
        .budgeting(Budgeting::Optimal)
        .privacy(PrivacyLevel::Pure { epsilon: 0.5 })
        .for_schema(&schema)
        .compile()
        .expect("planning succeeds on a valid workload");
    println!(
        "plan {}: achieved ε = {:.6} (requested 0.5), predicted total Var = {:.1}",
        plan.label(),
        plan.achieved_epsilon(),
        plan.predicted_variance()
    );

    // Phase 2: bind the table (computes the exact observations once) and
    // draw releases — each one deterministic in its seed.
    let session = Session::bind(&plan, &table).expect("table matches the plan's domain");
    let release = session.release(2013).expect("release succeeds");
    let answers = release.answers.marginals().expect("marginal plan");

    // Compare against the exact answers.
    let exact = workload.true_answers(&table);
    let rel = average_relative_error(answers, &exact).expect("aligned answers");
    println!("average relative error: {rel:.4}");

    // Show one released marginal next to the truth.
    let m = &answers[0];
    println!("\nmarginal over attributes {} (noisy vs exact):", m.mask());
    for (noisy, truth) in m.values().iter().zip(exact[0].values()) {
        println!("  {noisy:>10.2}  vs  {truth:>8.1}");
    }

    // The released marginals are mutually consistent: aggregating any two
    // to their common sub-marginal agrees.
    let common = answers[0].mask().intersect(answers[1].mask());
    let a = answers[0]
        .aggregate_to(common)
        .expect("intersection is dominated");
    let b = answers[1]
        .aggregate_to(common)
        .expect("intersection is dominated");
    let gap: f64 = a
        .values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!("\nconsistency check: max disagreement between overlapping marginals = {gap:.2e}");

    // Batches reuse the one solved plan and are reproducible seed-by-seed.
    let batch = session.release_batch(&[1, 2, 3]).expect("batch succeeds");
    let again = session.release(2).expect("release succeeds");
    assert_eq!(
        batch[1].answers.marginals().unwrap()[0].values(),
        again.answers.marginals().unwrap()[0].values(),
        "same (plan, data, seed) ⇒ same bytes, batched or not"
    );
    println!(
        "\nbatch of {} releases from one plan; seed 2 reproduces bit-for-bit",
        batch.len()
    );
}
