//! Quickstart: release all 2-way marginals of a small synthetic dataset
//! with ε-differential privacy, using the Fourier strategy and the paper's
//! optimal non-uniform noise budgets.
//!
//! Run with `cargo run --release --example quickstart`.

use datacube_dp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A toy relation: 6 binary attributes, 1000 correlated records.
    let schema = Schema::binary(6).expect("6 binary attributes is a valid schema");
    let records: Vec<Vec<usize>> = (0..1000)
        .map(|i| {
            let base = (i * 7919) % 64;
            (0..6).map(|b| (base >> b) & 1).collect()
        })
        .collect();
    let table = ContingencyTable::from_records(&schema, &records).expect("records fit the schema");

    // The query workload: every 2-way marginal (15 contingency tables).
    let workload = Workload::all_k_way(&schema, 2).expect("2-way marginals exist over 6 attrs");
    println!(
        "workload: {} marginals, {} cells, |F| = {} Fourier coefficients",
        workload.len(),
        workload.total_cells(),
        workload.fourier_support().len()
    );

    // Plan once (strategy search + exact answers), release at ε = 0.5.
    let planner = ReleasePlanner::new(&table, &workload, StrategyKind::Fourier, Budgeting::Optimal)
        .expect("planning succeeds on a valid workload");
    let mut rng = StdRng::seed_from_u64(2013);
    let release = planner
        .release(PrivacyLevel::Pure { epsilon: 0.5 }, &mut rng)
        .expect("release succeeds");

    println!(
        "method {} achieved ε = {:.6} (requested 0.5)",
        release.label, release.achieved_epsilon
    );

    // Compare against the exact answers.
    let exact = workload.true_answers(&table);
    let rel = average_relative_error(&release.answers, &exact).expect("aligned answers");
    println!("average relative error: {rel:.4}");

    // Show one released marginal next to the truth.
    let m = &release.answers[0];
    println!("\nmarginal over attributes {} (noisy vs exact):", m.mask());
    for (noisy, truth) in m.values().iter().zip(exact[0].values()) {
        println!("  {noisy:>10.2}  vs  {truth:>8.1}");
    }

    // The released marginals are mutually consistent: aggregating any two
    // to their common sub-marginal agrees.
    let a = release.answers[0]
        .aggregate_to(
            release.answers[0]
                .mask()
                .intersect(release.answers[1].mask()),
        )
        .expect("intersection is dominated");
    let b = release.answers[1]
        .aggregate_to(
            release.answers[0]
                .mask()
                .intersect(release.answers[1].mask()),
        )
        .expect("intersection is dominated");
    let gap: f64 = a
        .values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!("\nconsistency check: max disagreement between overlapping marginals = {gap:.2e}");
}
