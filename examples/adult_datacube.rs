//! Datacube release on the Adult census schema (the paper's Section 5.1
//! scenario): compare all seven methods on the 2-way marginal workload at a
//! few privacy levels.
//!
//! Run with `cargo run --release --example adult_datacube`.
//! If `data/adult.data` (the real UCI file) exists it is used; otherwise
//! the synthetic stand-in is generated.

use datacube_dp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let schema = dp_data::adult_schema();
    let (records, real) =
        dp_data::csv::adult_records_or_synthetic(std::path::Path::new("data/adult.data"), 20130401)
            .expect("synthesis cannot fail");
    println!(
        "Adult: {} records over {} attributes → {}-bit domain ({})",
        records.len(),
        schema.num_attributes(),
        schema.domain_bits(),
        if real {
            "real data"
        } else {
            "synthetic stand-in"
        },
    );
    let table = ContingencyTable::from_records(&schema, &records).expect("records fit schema");

    let workload = Workload::all_k_way(&schema, 2).expect("2-way workload");
    let exact = workload.true_answers(&table);
    println!(
        "workload Q2: {} marginals, {} cells\n",
        workload.len(),
        workload.total_cells()
    );

    let methods = [
        (StrategyKind::Fourier, Budgeting::Uniform),
        (StrategyKind::Fourier, Budgeting::Optimal),
        (StrategyKind::Cluster, Budgeting::Uniform),
        (StrategyKind::Cluster, Budgeting::Optimal),
        (StrategyKind::Workload, Budgeting::Uniform),
        (StrategyKind::Workload, Budgeting::Optimal),
        (StrategyKind::Identity, Budgeting::Uniform),
    ];

    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "method", "eps=0.1", "eps=0.5", "eps=1.0"
    );
    for (strategy, budgeting) in methods {
        let planner =
            ReleasePlanner::new(&table, &workload, strategy, budgeting).expect("planning succeeds");
        print!("{:>6}", planner.label());
        for eps in [0.1, 0.5, 1.0] {
            let trials = if strategy == StrategyKind::Identity {
                1
            } else {
                3
            };
            let mut rng = StdRng::seed_from_u64(7 + (eps * 10.0) as u64);
            let mut err = 0.0;
            for _ in 0..trials {
                let release = planner
                    .release(PrivacyLevel::Pure { epsilon: eps }, &mut rng)
                    .expect("release succeeds");
                err += average_relative_error(&release.answers, &exact).expect("aligned")
                    / trials as f64;
            }
            print!(" {err:>12.4}");
        }
        println!();
    }

    // Show what the cluster strategy chose.
    let planner = ReleasePlanner::new(&table, &workload, StrategyKind::Cluster, Budgeting::Optimal)
        .expect("planning succeeds");
    if let Some(clustering) = planner.clustering() {
        println!(
            "\ncluster strategy materializes {} centroid marginals (from {} queries):",
            clustering.num_clusters(),
            workload.len()
        );
        for (c, size) in clustering.centroids.iter().zip(clustering.cluster_sizes()) {
            println!(
                "  centroid {c} covering {size} queries ({} cells)",
                c.cell_count()
            );
        }
    }
}
