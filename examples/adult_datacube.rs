//! Datacube release on the Adult census schema (the paper's Section 5.1
//! scenario): compare all seven methods on the 2-way marginal workload at a
//! few privacy levels, with every (method, ε) plan compiled once through
//! the [`PlanCache`] and its trials batched over one [`Session`].
//!
//! Run with `cargo run --release --example adult_datacube`.
//! If `data/adult.data` (the real UCI file) exists it is used; otherwise
//! the synthetic stand-in is generated.

use datacube_dp::prelude::*;

fn main() {
    let schema = dp_data::adult_schema();
    let (records, real) =
        dp_data::csv::adult_records_or_synthetic(std::path::Path::new("data/adult.data"), 20130401)
            .expect("synthesis cannot fail");
    println!(
        "Adult: {} records over {} attributes → {}-bit domain ({})",
        records.len(),
        schema.num_attributes(),
        schema.domain_bits(),
        if real {
            "real data"
        } else {
            "synthetic stand-in"
        },
    );
    let table = ContingencyTable::from_records(&schema, &records).expect("records fit schema");

    let workload = Workload::all_k_way(&schema, 2).expect("2-way workload");
    let exact = workload.true_answers(&table);
    println!(
        "workload Q2: {} marginals, {} cells\n",
        workload.len(),
        workload.total_cells()
    );

    let methods = [
        (StrategyKind::Fourier, Budgeting::Uniform),
        (StrategyKind::Fourier, Budgeting::Optimal),
        (StrategyKind::Cluster, Budgeting::Uniform),
        (StrategyKind::Cluster, Budgeting::Optimal),
        (StrategyKind::Workload, Budgeting::Uniform),
        (StrategyKind::Workload, Budgeting::Optimal),
        (StrategyKind::Identity, Budgeting::Uniform),
    ];

    let cache = PlanCache::new();
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "method", "eps=0.1", "eps=0.5", "eps=1.0"
    );
    for (strategy, budgeting) in methods {
        for (col, eps) in [0.1, 0.5, 1.0].into_iter().enumerate() {
            let plan = cache
                .get_or_compile(
                    PlanBuilder::marginals(workload.clone(), strategy)
                        .budgeting(budgeting)
                        .privacy(PrivacyLevel::Pure { epsilon: eps })
                        .for_schema(&schema),
                )
                .expect("planning succeeds");
            if col == 0 {
                print!("{:>6}", plan.label());
            }
            let trials = if strategy == StrategyKind::Identity {
                1
            } else {
                3
            };
            let session = Session::bind(&plan, &table).expect("table matches");
            let seeds: Vec<u64> = (0..trials).map(|t| 7 + (eps * 10.0) as u64 + t).collect();
            let err: f64 = session
                .release_batch(&seeds)
                .expect("release succeeds")
                .into_iter()
                .map(|r| {
                    let answers = r.answers.into_marginals().expect("marginal plan");
                    average_relative_error(&answers, &exact).expect("aligned") / trials as f64
                })
                .sum();
            print!(" {err:>12.4}");
        }
        println!();
    }
    println!(
        "\nplan cache: {} compiles for {} (method, ε) requests",
        cache.misses(),
        cache.misses() + cache.hits()
    );

    // Show what the cluster strategy chose (the plan retains it).
    let plan = cache
        .get_or_compile(
            PlanBuilder::marginals(workload.clone(), StrategyKind::Cluster)
                .budgeting(Budgeting::Optimal)
                .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
                .for_schema(&schema),
        )
        .expect("cache hit");
    if let Some(clustering) = plan.clustering() {
        println!(
            "\ncluster strategy materializes {} centroid marginals (from {} queries):",
            clustering.num_clusters(),
            workload.len()
        );
        for (c, size) in clustering
            .centroids()
            .iter()
            .zip(clustering.cluster_sizes())
        {
            println!(
                "  centroid {c} covering {size} queries ({} cells)",
                c.cell_count()
            );
        }
    }
}
