//! NLTCS workload study (the paper's Section 5.2 scenario): quantify how
//! much the optimal non-uniform budgeting improves each strategy on the
//! mixed-arity workloads `Q*_1` and `Q^a_1`, where marginal sizes differ
//! and budget shaping matters most. Each method compiles one plan and
//! batches all its trials through a single [`Session`].
//!
//! Run with `cargo run --release --example nltcs_workloads`.

use datacube_dp::prelude::*;

fn mean_error(
    table: &ContingencyTable,
    workload: &Workload,
    strategy: StrategyKind,
    budgeting: Budgeting,
    eps: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let exact = workload.true_answers(table);
    let plan = PlanBuilder::marginals(workload.clone(), strategy)
        .budgeting(budgeting)
        .privacy(PrivacyLevel::Pure { epsilon: eps })
        .compile()
        .expect("planning succeeds");
    let session = Session::bind(&plan, table).expect("table matches");
    let seeds: Vec<u64> = (0..trials as u64).map(|t| seed + t).collect();
    session
        .release_batch(&seeds)
        .expect("release succeeds")
        .into_iter()
        .map(|r| {
            let answers = r.answers.into_marginals().expect("marginal plan");
            average_relative_error(&answers, &exact).expect("aligned")
        })
        .sum::<f64>()
        / trials as f64
}

fn main() {
    let schema = dp_data::nltcs_schema();
    let records = dp_data::synthesize_nltcs(dp_data::nltcs::NLTCS_RECORDS, 20130402);
    let table = ContingencyTable::from_records(&schema, &records).expect("records fit schema");
    println!(
        "NLTCS: {} records over 16 binary attributes (N = {})\n",
        records.len(),
        schema.domain_size()
    );

    let workloads = [
        ("Q1*", Workload::k_way_plus_half(&schema, 1).expect("valid")),
        (
            "Q1a",
            Workload::k_way_plus_attr(&schema, 1, 0).expect("valid"),
        ),
    ];
    let eps = 0.5;
    let trials = 10;

    for (name, workload) in &workloads {
        println!(
            "== workload {name}: {} marginals, {} cells, ε = {eps} ==",
            workload.len(),
            workload.total_cells()
        );
        println!(
            "{:>9} {:>12} {:>12} {:>14}",
            "strategy", "uniform", "optimal", "improvement"
        );
        for strategy in [
            StrategyKind::Fourier,
            StrategyKind::Cluster,
            StrategyKind::Workload,
        ] {
            let uni = mean_error(
                &table,
                workload,
                strategy,
                Budgeting::Uniform,
                eps,
                trials,
                5,
            );
            let opt = mean_error(
                &table,
                workload,
                strategy,
                Budgeting::Optimal,
                eps,
                trials,
                5,
            );
            println!(
                "{:>9} {:>12.4} {:>12.4} {:>13.1}%",
                strategy.label(),
                uni,
                opt,
                (1.0 - opt / uni) * 100.0
            );
        }
        println!();
    }

    println!(
        "The paper reports 30-35% error reduction for F+ over F on Q1*/Q2* \
         (Section 5.2); the uniform-vs-optimal gaps above reproduce that shape."
    );
}
