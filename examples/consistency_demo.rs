//! Consistency repair (Sections 3.3 / 4.3): take mutually *inconsistent*
//! noisy marginals and project them onto the consistent set under L2
//! (weighted least squares in Fourier space), L1, and L∞, then verify the
//! paper's guarantee that consistency at most doubles the error.
//!
//! Run with `cargo run --release --example consistency_demo`.

use dp_core::consistency::{
    consistency_error_pair, is_consistent, make_consistent, ConsistencyNorm,
};
use dp_core::fourier::{CoefficientSpace, ObservationOperator};
use dp_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let d = 5;
    let schema = Schema::binary(d).expect("valid schema");
    let mut rng = StdRng::seed_from_u64(123);
    let counts: Vec<f64> = (0..1 << d).map(|_| rng.gen_range(0.0..30.0)).collect();
    let table = ContingencyTable::from_counts(counts);
    let workload = Workload::all_k_way(&schema, 2).expect("2-way workload");
    let exact = workload.true_answers(&table);

    // Simulate the "noise marginals independently" strategy without any
    // recovery step: the result is inconsistent.
    let noisy: Vec<MarginalTable> = exact
        .iter()
        .map(|m| {
            let vals: Vec<f64> = m
                .values()
                .iter()
                .map(|v| v + rng.gen_range(-6.0..6.0))
                .collect();
            MarginalTable::new(m.mask(), vals)
        })
        .collect();
    println!(
        "noisy marginals consistent? {}",
        is_consistent(&noisy, 1e-6)
    );

    // L2 repair via the Fourier-space GLS (diagonal normal equations).
    let space = CoefficientSpace::from_marginals(d, workload.marginals());
    let op = ObservationOperator::new(&space, workload.marginals()).expect("support covers");
    let cells: Vec<f64> = noisy.iter().flat_map(|m| m.values().to_vec()).collect();
    let coeffs = op
        .gls_solve(&cells, &vec![1.0; workload.len()])
        .expect("solvable");
    let l2: Vec<MarginalTable> = workload
        .marginals()
        .iter()
        .map(|&a| space.reconstruct(&coeffs, a).expect("in support"))
        .collect();

    // L1 and L∞ repairs via the simplex LP over the same m coefficients.
    let l1 = make_consistent(d, &noisy, ConsistencyNorm::L1).expect("LP solvable");
    let linf = make_consistent(d, &noisy, ConsistencyNorm::LInf).expect("LP solvable");

    println!(
        "\n{:>8} {:>12} {:>14} {:>14} {:>12}",
        "norm", "consistent?", "err(noisy)", "err(repaired)", "ratio"
    );
    for (name, repaired, norm) in [
        ("L2", &l2, ConsistencyNorm::L1),
        ("L1", &l1, ConsistencyNorm::L1),
        ("L∞", &linf, ConsistencyNorm::LInf),
    ] {
        let (before, after) = consistency_error_pair(&exact, &noisy, repaired, norm);
        println!(
            "{:>8} {:>12} {:>14.2} {:>14.2} {:>12.3}",
            name,
            is_consistent(repaired, 1e-6),
            before,
            after,
            after / before
        );
    }
    println!("\nPer Section 3.3, every ratio above is guaranteed ≤ 2 — and in");
    println!("practice the projection usually *reduces* the error (ratio < 1),");
    println!("because averaging overlapping marginals cancels independent noise.");

    // Contrast: releases served through the plan/session API recover in a
    // single coefficient space, so they are consistent *by construction* —
    // no repair step needed.
    let plan = PlanBuilder::marginals(workload.clone(), StrategyKind::Fourier)
        .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
        .compile()
        .expect("planning succeeds");
    let session = Session::bind(&plan, &table).expect("table matches");
    let release = session.release(123).expect("release succeeds");
    println!(
        "\nplan/session release consistent by construction? {}",
        is_consistent(release.answers.marginals().expect("marginal plan"), 1e-6)
    );
}
