//! The framework beyond marginals: range-count queries over a 1-D domain
//! with the hierarchical [14] and wavelet [23] strategies through the same
//! [`PlanBuilder`]/[`Session`] API as the marginal workloads — including
//! (ε,δ) Gaussian plans, and matrix-free planning that scales far past the
//! old dense-oracle limit.
//!
//! Run with `cargo run --release --example range_queries`.

use datacube_dp::prelude::*;

fn main() {
    let n = 256;
    // A bursty histogram (e.g. event counts per time slot).
    let hist: Vec<f64> = (0..n)
        .map(|i| {
            let burst = if (64..96).contains(&i) { 40.0 } else { 0.0 };
            5.0 + burst + ((i * 31) % 7) as f64
        })
        .collect();

    let workload = RangeWorkload::all_prefixes(n).expect("power-of-two domain");
    println!(
        "domain n = {n}, workload: {} prefix ranges, ε = 1\n",
        workload.ranges().len()
    );

    println!(
        "{:>12} {:>10} {:>16} {:>16}",
        "strategy", "budgets", "total Var(y)", "mean |error|"
    );
    let exact = workload.true_answers(&hist).expect("lengths match");
    let trials = 40u64;
    for strategy in [
        RangeStrategy::Identity,
        RangeStrategy::Hierarchical,
        RangeStrategy::Wavelet,
    ] {
        for budgeting in [Budgeting::Uniform, Budgeting::Optimal] {
            if strategy == RangeStrategy::Identity && budgeting == Budgeting::Optimal {
                continue; // single group: identical to uniform
            }
            let plan = PlanBuilder::ranges(workload.clone(), strategy)
                .budgeting(budgeting)
                .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
                .compile()
                .expect("planning succeeds");
            let session = Session::bind_histogram(&plan, &hist).expect("histogram matches");
            let seeds: Vec<u64> = (0..trials).map(|t| 99 + t).collect();
            let mae: f64 = session
                .release_batch(&seeds)
                .expect("release succeeds")
                .into_iter()
                .map(|r| {
                    let y = r.answers.into_ranges().expect("range plan");
                    y.iter()
                        .zip(&exact)
                        .map(|(a, b)| (a - b).abs())
                        .sum::<f64>()
                        / (y.len() as f64 * trials as f64)
                })
                .sum();
            println!(
                "{:>12} {:>10} {:>16.1} {:>16.2}",
                plan.label(),
                if budgeting == Budgeting::Optimal {
                    "optimal"
                } else {
                    "uniform"
                },
                plan.query_variances().iter().sum::<f64>(),
                mae
            );
        }
    }

    // The same plans compile under (ε,δ)-DP — the range path is no longer
    // Laplace-only.
    let gaussian = PlanBuilder::ranges(workload.clone(), RangeStrategy::Hierarchical)
        .privacy(PrivacyLevel::Approx {
            epsilon: 1.0,
            delta: 1e-6,
        })
        .compile()
        .expect("Gaussian range plans compile");
    println!(
        "\n(ε,δ) tree plan: achieved ε = {:.6} at δ = 1e-6, total Var = {:.1}",
        gaussian.achieved_epsilon(),
        gaussian.query_variances().iter().sum::<f64>()
    );

    // Matrix-free planning has no dense 2^d matrix anywhere: a 2^16 domain
    // (4-billion-entry Q·S products under the old dense planner) compiles
    // in milliseconds.
    let big = 1usize << 16;
    let big_plan = PlanBuilder::ranges(
        RangeWorkload::sliding_windows(big, 1024).expect("valid windows"),
        RangeStrategy::Wavelet,
    )
    .compile()
    .expect("matrix-free planning scales");
    println!(
        "matrix-free: planned {} sliding-window queries over n = {big} ({} budget groups)",
        big_plan.spec().num_queries(),
        big_plan.solution().group_budgets.len()
    );

    println!(
        "\nOptimal budgets shift ε toward the tree/wavelet levels that the \
         recovery leans on most — the same Step-2 optimization that powers \
         the marginal experiments, now planned without materializing Q or S."
    );
}
