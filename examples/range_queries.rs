//! The framework beyond marginals: range-count queries over a 1-D domain
//! with the hierarchical [14] and wavelet [23] strategies, both of which
//! the paper's Section 3.1 identifies as groupable — so the optimal budget
//! machinery applies to them unchanged.
//!
//! Run with `cargo run --release --example range_queries`.

use dp_core::range::{plan_range_release, RangeStrategy, RangeWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    // A bursty histogram (e.g. event counts per time slot).
    let hist: Vec<f64> = (0..n)
        .map(|i| {
            let burst = if (64..96).contains(&i) { 40.0 } else { 0.0 };
            5.0 + burst + ((i * 31) % 7) as f64
        })
        .collect();

    let workload = RangeWorkload::all_prefixes(n).expect("power-of-two domain");
    println!(
        "domain n = {n}, workload: {} prefix ranges, ε = 1\n",
        workload.ranges().len()
    );

    println!(
        "{:>12} {:>10} {:>16} {:>16}",
        "strategy", "budgets", "total Var(y)", "mean |error|"
    );
    let mut rng = StdRng::seed_from_u64(99);
    let exact = workload.true_answers(&hist).expect("lengths match");
    let trials = 40;
    for strategy in [
        RangeStrategy::Identity,
        RangeStrategy::Hierarchical,
        RangeStrategy::Wavelet,
    ] {
        for optimal in [false, true] {
            if strategy == RangeStrategy::Identity && optimal {
                continue; // single group: identical to uniform
            }
            let plan =
                plan_range_release(&workload, strategy, optimal, 1.0).expect("planning succeeds");
            let mut mae = 0.0;
            for _ in 0..trials {
                let y = plan.release(&hist, &mut rng).expect("release succeeds");
                mae += y
                    .iter()
                    .zip(&exact)
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
                    / (y.len() * trials) as f64;
            }
            println!(
                "{:>12} {:>10} {:>16.1} {:>16.2}",
                strategy.label(),
                if optimal { "optimal" } else { "uniform" },
                plan.total_variance(),
                mae
            );
        }
    }

    println!(
        "\nOptimal budgets shift ε toward the tree/wavelet levels that the \
         recovery leans on most — the same Step-2 optimization that powers \
         the marginal experiments, applied through the explicit-matrix path."
    );
}
