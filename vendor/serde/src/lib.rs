//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of serde the workspace uses: [`Serialize`]/[`Deserialize`] traits
//! (modelled through an owned JSON-like [`Value`] rather than serde's
//! zero-copy visitor machinery), blanket impls for the primitive types the
//! workspace serializes, and a `#[derive(Serialize, Deserialize)]` macro for
//! plain named-field structs (re-exported from the sibling `serde_derive`
//! shim). `serde_json` (also vendored) renders and parses [`Value`].
//!
//! The shim is API-compatible at the call sites used here; swap the
//! workspace dependency back to crates.io when a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document tree — the interchange type of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable path + reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A "field missing" error.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {value:?}")))
            }
        }
    )*};
}

serialize_number!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {value:?}")))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::deserialize_value(&vec![1u32, 2].serialize_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<f64>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(f64::deserialize_value(&Value::Bool(true)).is_err());
        assert!(String::deserialize_value(&Value::Number(1.0)).is_err());
        assert!(Vec::<f64>::deserialize_value(&Value::Null).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v.get_field("a").and_then(Value::as_f64), Some(1.0));
        assert!(v.get_field("b").is_none());
    }
}
