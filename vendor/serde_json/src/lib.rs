//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders and parses the vendored `serde` shim's [`Value`] tree.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a human-readable, indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close) = match indent {
        Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
        None => ("", String::new(), String::new()),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is serde_json's behavior for
        // non-finite f64 too.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected '{}' at byte {}", c as char, *pos)))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error("unexpected end of input".into()));
    };
    match b {
        b'n' => parse_literal(bytes, pos, "null", Value::Null),
        b't' => parse_literal(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error("unterminated string".into()));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error("unterminated escape".into()));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".into()))?,
                        );
                    }
                    other => return Err(Error(format!("bad escape \\{}", other as char))),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at the byte we
                // consumed.
                let start = *pos - 1;
                let width = utf8_width(b);
                let chunk = bytes
                    .get(start..start + width)
                    .ok_or_else(|| Error("truncated UTF-8".into()))?;
                let s = std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                out.push_str(s);
                *pos = start + width;
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| Error(format!("invalid number at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("q2 \"star\"".into())),
            ("eps".into(), Value::Number(0.5)),
            ("n".into(), Value::Number(3.0)),
            ("ok".into(), Value::Bool(true)),
            (
                "cells".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(-2.25)]),
            ),
            ("none".into(), Value::Null),
        ]);
        let s = to_string(&VWrap(v.clone())).unwrap();
        assert_eq!(parse_value(&s).unwrap(), v);
        let pretty = to_string_pretty(&VWrap(v.clone())).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    struct VWrap(Value);
    impl Serialize for VWrap {
        fn serialize_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("nulX").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn from_str_typed() {
        let v: Vec<f64> = from_str("[1, 2.5, -3]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -3.0]);
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
    }
}
