//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate: just the [`Normal`] distribution (all this workspace needs),
//! implemented with the Box–Muller transform over the `rand` shim.

use rand::{Rng, RngCore};

/// A probability distribution that can be sampled with an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

impl Normal {
    /// Creates the distribution, validating the parameters.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0,1] to keep ln finite, u2 in [0,1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(1.0, 0.0).is_ok());
    }

    #[test]
    fn moments_match() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn samples_are_finite() {
        let dist = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100_000 {
            assert!(dist.sample(&mut rng).is_finite());
        }
    }
}
