//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for **plain named-field structs** (no generics,
//! no enums, no field attributes), implemented directly on
//! [`proc_macro::TokenStream`] so it needs neither `syn` nor `quote`.
//!
//! The expansion targets the vendored `serde` shim's `Value`-based traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed struct: its name and the ordered list of field names.
struct NamedStruct {
    name: String,
    fields: Vec<String>,
}

/// Parses `[attrs] [pub] struct Name { [attrs] [pub] field: Type, ... }`.
///
/// Panics with a descriptive message on anything fancier (tuple structs,
/// generics, enums) — extend the shim if a future type needs it.
fn parse_named_struct(input: TokenStream) -> NamedStruct {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;

    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute body group.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde_derive shim: expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(_) => {} // visibility / `pub`
            other => panic!("serde_derive shim: unexpected token {other:?} before `struct`"),
        }
    }
    let name = name.expect("serde_derive shim: derive target must be a struct");

    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic structs are not supported")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple structs are not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive shim: struct `{name}` has no braced field list"),
        }
    };

    // Fields: split on top-level commas; within each field the name is the
    // last identifier before the first top-level `:`.
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut seen_colon = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                seen_colon = false;
                last_ident = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !seen_colon => {
                seen_colon = true;
                fields.push(
                    last_ident
                        .take()
                        .expect("serde_derive shim: field without a name"),
                );
            }
            TokenTree::Punct(p) if p.as_char() == '#' && !seen_colon => {}
            TokenTree::Ident(id) if !seen_colon => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {} // attribute groups before the name, or the type tokens
        }
    }

    NamedStruct { name, fields }
}

/// Expands `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_named_struct(input);
    let pushes: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), \
                 ::serde::Serialize::serialize_value(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Expands `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_named_struct(input);
    let inits: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(\
                 value.get_field(\"{f}\")\
                 .ok_or_else(|| ::serde::DeError::missing_field(\"{f}\"))?)?,\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{\n{inits}}})\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
