//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion):
//! a small wall-clock benchmarking harness exposing the `Criterion` /
//! `benchmark_group` / `bench_with_input` / `Bencher::iter` API surface the
//! workspace's benches use. It has none of criterion's statistics — each
//! benchmark is timed for a fixed number of samples and the min / median /
//! mean are printed as one line per benchmark.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 30,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 30, &mut f);
        self
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with an input value, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a single parameter.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` for the configured number of samples (after warmup).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: a few untimed runs to populate caches / branch predictors.
        for _ in 0..3.min(self.sample_size) {
            std::hint::black_box(f());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "  {label:<40} min {:>12} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Re-export used by generated harness code.
pub use std::hint::black_box;

/// Declares a benchmark suite function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given suites.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        // 3 warmup + 5 timed.
        assert_eq!(runs, 8);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains("s"));
    }
}
