//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no registry access, so this shim reimplements
//! the subset of rayon's API the workspace uses — and it is **genuinely
//! parallel**: work is executed on scoped OS threads
//! (`std::thread::scope`), one per available core, not a sequential fake.
//! There is no work-stealing pool, but splitting is **dynamic**: the index
//! space is cut into several contiguous chunks per worker and the workers
//! claim chunks from a shared queue (an atomic cursor) as they finish —
//! so a skewed workload (e.g. the cluster search's uneven candidate rows)
//! keeps every core busy instead of stalling on the unluckiest static
//! block. Per-chunk results are still combined in chunk-index order, so
//! every reduction is deterministic regardless of which thread ran which
//! chunk.
//!
//! Supported surface: `par_iter` / `par_iter_mut` / `into_par_iter` on
//! slices, `Vec`s and ranges, `par_chunks_mut`, the `map` / `enumerate` /
//! `for_each` / `collect` / `sum` / `reduce` adaptors, [`join`], and
//! [`current_num_threads`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Work items below this count run sequentially — one item cannot be split,
/// and spawning for a pair is rarely worth it. Callers with many fine-grained
/// items should batch them into chunky units (as rayon users do with
/// `with_min_len` / `par_chunks`).
const MIN_PARALLEL_LEN: usize = 4;

/// Target number of queue chunks handed to each worker thread. More chunks
/// mean finer-grained load balancing at slightly more queue traffic; 8 is
/// plenty for the coarse data parallelism in this workspace.
const CHUNKS_PER_THREAD: usize = 8;

/// The contiguous chunk ranges `0..len` is cut into for dynamic splitting:
/// about [`CHUNKS_PER_THREAD`] per thread, never smaller than one item.
fn chunk_ranges(len: usize, threads: usize) -> (usize, usize) {
    let target = (threads * CHUNKS_PER_THREAD).min(len).max(1);
    let chunk = len.div_ceil(target);
    (chunk, len.div_ceil(chunk))
}

/// Number of worker threads used for parallel execution.
///
/// Cached after the first call: `available_parallelism` re-reads cgroup
/// state on Linux, which is far too slow for the per-round queries hot
/// loops issue (real rayon likewise fixes its pool size once).
pub fn current_num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    match CACHED.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            CACHED.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// Count of scoped worker threads spawned so far (test/diagnostic hook:
/// proves parallel paths really fan out onto extra threads).
pub fn workers_spawned() -> usize {
    WORKERS_SPAWNED.load(Ordering::Relaxed)
}

static WORKERS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Splits `0..len` into a queue of contiguous chunks and runs
/// `work(range)` for each chunk, workers (the calling thread plus scoped
/// spawns) claiming chunks dynamically from a shared atomic cursor.
fn run_blocks<F>(len: usize, work: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len < MIN_PARALLEL_LEN {
        work(0..len);
        return;
    }
    let (chunk, n_chunks) = chunk_ranges(len, threads);
    let cursor = AtomicUsize::new(0);
    let worker = |work: &F| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        work(c * chunk..((c + 1) * chunk).min(len));
    };
    std::thread::scope(|s| {
        let worker = &worker;
        for _ in 1..threads {
            let work = &work;
            WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            s.spawn(move || worker(work));
        }
        worker(&work);
    });
}

/// The shim's parallel-iterator abstraction: random access by index.
///
/// `pi_get` hands out item `i`; driver methods split the index space over
/// threads. All adaptors preserve indexed access, so `collect` keeps order.
pub trait ParallelIterator: Send + Sync + Sized {
    /// The item type produced for each index.
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Produces item `i`. Must be safe to call concurrently from multiple
    /// threads with distinct indices.
    fn pi_get(&self, i: usize) -> Self::Item;

    /// Maps each item through `f` in parallel.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_blocks(self.pi_len(), |range| {
            for i in range {
                f(self.pi_get(i));
            }
        });
    }

    /// Collects items in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items in parallel.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let partials = collect_blocks(&self, |range, iter| {
            range.map(|i| iter.pi_get(i)).sum::<S>()
        });
        partials.into_iter().sum()
    }

    /// Reduces the items with `op`, starting each block from `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let partials = collect_blocks(&self, |range, iter| {
            range.fold(identity(), |acc, i| op(acc, iter.pi_get(i)))
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Compatibility no-op (the shim always splits into contiguous blocks).
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Runs `f` once per contiguous chunk — workers claiming chunks
/// dynamically — and returns the per-chunk results **in chunk order**, so
/// downstream combination is deterministic no matter which thread ran
/// which chunk.
fn collect_blocks<I, R, F>(iter: &I, f: F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(std::ops::Range<usize>, &I) -> R + Sync,
{
    let len = iter.pi_len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len < MIN_PARALLEL_LEN {
        return vec![f(0..len, iter)];
    }
    let (chunk, n_chunks) = chunk_ranges(len, threads);
    let cursor = AtomicUsize::new(0);
    // Each worker returns its (chunk index, result) pairs; the merge below
    // restores chunk order.
    let worker = |f: &F| {
        let mut mine: Vec<(usize, R)> = Vec::new();
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            mine.push((c, f(c * chunk..((c + 1) * chunk).min(len), iter)));
        }
        mine
    };
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n_chunks, || None);
    std::thread::scope(|s| {
        let worker = &worker;
        let mut handles = Vec::new();
        for _ in 1..threads {
            let f = &f;
            WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            handles.push(s.spawn(move || worker(f)));
        }
        for (c, r) in worker(&f) {
            out[c] = Some(r);
        }
        for h in handles {
            for (c, r) in h.join().expect("rayon shim: worker panicked") {
                out[c] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("rayon shim: chunk result missing"))
        .collect()
}

/// Conversion from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from the iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let blocks = collect_blocks(&iter, |range, it| {
            range.map(|i| it.pi_get(i)).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(iter.pi_len());
        for b in blocks {
            out.extend(b);
        }
        out
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<I: ParallelIterator<Item = Result<T, E>>>(iter: I) -> Self {
        let blocks = collect_blocks(&iter, |range, it| {
            range.map(|i| it.pi_get(i)).collect::<Result<Vec<T>, E>>()
        });
        let mut out = Vec::with_capacity(iter.pi_len());
        for b in blocks {
            out.extend(b?);
        }
        Ok(out)
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.end - self.start
    }

    fn pi_get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// `map` adaptor.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, i: usize) -> R {
        (self.f)(self.base.pi_get(i))
    }
}

/// `enumerate` adaptor.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.pi_get(i))
    }
}

/// Parallel mutable iteration over disjoint chunk views of a slice.
///
/// Unlike the indexed iterators above, mutable iteration hands each worker
/// thread an exclusive sub-slice, so items are driven via [`ParChunksMut::for_each`]
/// (optionally enumerated) rather than random access.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk_size).enumerate().collect();
        let n = chunks.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n == 1 {
            for (i, c) in chunks {
                f(i, c);
            }
            return;
        }
        // Dynamic splitting: workers pop chunks off a shared queue as they
        // finish, so skewed per-chunk costs cannot stall the whole batch
        // behind one unlucky static assignment.
        let queue = Mutex::new(chunks.into_iter());
        let worker = |f: &F| loop {
            let next = queue.lock().expect("rayon shim: queue poisoned").next();
            let Some((i, c)) = next else {
                break;
            };
            f(i, c);
        };
        std::thread::scope(|s| {
            let worker = &worker;
            for _ in 1..threads {
                let f = &f;
                WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                s.spawn(move || worker(f));
            }
            worker(&f);
        });
    }

    /// Runs `f` on every chunk, chunks distributed across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.drive(|_, c| f(c));
    }
}

/// Enumerated [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T: Send> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        self.inner.drive(|i, c| f((i, c)));
    }
}

/// Extension traits mirroring rayon's prelude.
pub mod prelude {
    pub use super::{FromParallelIterator, ParallelIterator};

    /// `par_iter` on shared slices.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed item type.
        type Item: Send + 'a;
        /// The iterator type.
        type Iter: super::ParallelIterator<Item = Self::Item>;

        /// Returns a parallel iterator over borrowed items.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = super::ParIter<'a, T>;

        fn par_iter(&'a self) -> super::ParIter<'a, T> {
            super::ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = super::ParIter<'a, T>;

        fn par_iter(&'a self) -> super::ParIter<'a, T> {
            super::ParIter { slice: self }
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Exclusive view of the data.
        fn psm_slice(&mut self) -> &mut [T];

        /// Parallel iteration over disjoint chunks of `chunk_size`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> super::ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            super::ParChunksMut {
                slice: self.psm_slice(),
                chunk_size,
            }
        }

        /// Parallel mutable per-item iteration (single-item chunks under the
        /// hood, batched per thread).
        fn par_iter_mut(&mut self) -> super::ParChunksMut<'_, T> {
            let len = self.psm_slice().len().max(1);
            let chunk = len.div_ceil(super::current_num_threads().max(1));
            super::ParChunksMut {
                slice: self.psm_slice(),
                chunk_size: chunk.max(1),
            }
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn psm_slice(&mut self) -> &mut [T] {
            self
        }
    }

    impl<T: Send> ParallelSliceMut<T> for Vec<T> {
        fn psm_slice(&mut self) -> &mut [T] {
            self
        }
    }

    /// `into_par_iter` on ranges.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: super::ParallelIterator<Item = Self::Item>;

        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = super::ParRange;

        fn into_par_iter(self) -> super::ParRange {
            super::ParRange {
                start: self.start,
                end: self.end,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_map_collect_preserves_order() {
        let data: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn par_sum_matches_sequential() {
        let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let par: f64 = data.par_iter().map(|&x| x).sum();
        let seq: f64 = data.iter().sum();
        assert!((par - seq).abs() < 1e-6);
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let mut data = vec![0usize; 10_000];
        data.par_chunks_mut(100).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i;
            }
        });
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, j / 100);
        }
    }

    #[test]
    fn large_workloads_use_multiple_threads() {
        if super::current_num_threads() <= 1 {
            return; // single-core CI runner: nothing to demonstrate
        }
        let ids = Mutex::new(HashSet::new());
        (0..100_000usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected work on more than one thread"
        );
    }

    #[test]
    fn skewed_workload_covers_every_index_exactly_once() {
        // Dynamic chunk claiming must neither drop nor repeat indices even
        // when early items are far more expensive than late ones.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 10_000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            if i < n / 100 {
                std::hint::black_box((0..1_000usize).sum::<usize>());
            }
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_ranges_cover_the_index_space() {
        for len in [1usize, 3, 4, 5, 63, 64, 65, 4096, 100_000] {
            for threads in [1usize, 2, 7, 64] {
                let (chunk, n_chunks) = super::chunk_ranges(len, threads);
                assert!(chunk >= 1);
                assert_eq!(len.div_ceil(chunk), n_chunks);
                // The last chunk is non-empty and ends exactly at len.
                assert!((n_chunks - 1) * chunk < len);
                assert!(n_chunks * chunk >= len);
            }
        }
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn enumerate_indexes_correctly() {
        let data: Vec<usize> = (0..5000).map(|i| i * 3).collect();
        let out: Vec<(usize, usize)> = data.par_iter().enumerate().map(|(i, &v)| (i, v)).collect();
        for (i, v) in out {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn reduce_matches_fold() {
        let data: Vec<usize> = (1..=10_000).collect();
        let max = data.par_iter().map(|&x| x).reduce(|| 0, usize::max);
        assert_eq!(max, 10_000);
    }

    #[test]
    fn result_collect_short_circuits_value() {
        let data: Vec<usize> = (0..5000).collect();
        let ok: Result<Vec<usize>, String> = data.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 5000);
        let err: Result<Vec<usize>, String> = data
            .par_iter()
            .map(|&x| {
                if x == 4321 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }
}
