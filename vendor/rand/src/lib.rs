//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the handful of `rand 0.8` APIs the workspace uses are
//! reimplemented here from scratch: the [`RngCore`]/[`Rng`]/[`SeedableRng`]
//! traits, uniform sampling over ranges, and a deterministic [`rngs::StdRng`]
//! backed by xoshiro256++ seeded via SplitMix64.
//!
//! The generator is *not* the same stream as the real crate's `StdRng`
//! (ChaCha12), so seeds produce different — but equally reproducible —
//! sequences. Nothing in the workspace depends on the exact stream, only on
//! determinism per seed. When a registry becomes available, point the
//! workspace dependency back at crates.io and delete this shim.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly "at standard" from an RNG
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Rejection sampling over the widened span avoids modulo bias.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if wide <= zone {
                        return (self.start as i128 + (wide % span) as i128) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive sample range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    let wide = rng.next_u64();
                    return wide as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`] (including unsized ones behind `&mut`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy; the shim derives the
    /// seed from the system clock and a process-unique counter.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ by Blackman & Vigna — a fast, high-quality, seedable
    /// generator standing in for the real crate's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64 per the xoshiro reference code.
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by some call sites; same generator as [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Returns a fresh, entropy-seeded generator (API-compatible convenience).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_generic(/* R: Rng + ?Sized call pattern */) {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
