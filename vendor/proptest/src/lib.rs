//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `arg in strategy` bindings, range strategies over numeric
//! types, `collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Each property runs a fixed number of deterministic cases (seeded from
//! the case index), so failures are reproducible. There is no shrinking —
//! the failing inputs are printed instead.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Number of random cases per property.
pub const CASES: u64 = 64;

/// A source of random values for strategies.
pub type TestRng = StdRng;

/// Something that can generate values for a property-test argument.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u64, u32, usize, i64, i32, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A / 0, B / 1)(A / 0, B / 1, C / 2)(
    A / 0,
    B / 1,
    C / 2,
    D / 3
));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive-exclusive size specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts inside a property, attributing the failure to the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut prop_rng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(
                        0x5eed ^ case.wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut prop_rng);
                    )+
                    // Render the inputs before the body can move them, so a
                    // failing case can be reported without shrinking support.
                    let rendered_inputs = format!(
                        concat!(
                            "proptest case {} of ", stringify!($name), " failed with inputs:",
                            $( "\n  ", stringify!($arg), " = {:?}", )+
                        ),
                        case, $( &$arg ),+
                    );
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!("{rendered_inputs}");
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = collection::vec(0.0f64..1.0, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let fixed = collection::vec(0.0f64..1.0, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    #[test]
    fn tuple_strategies_compose() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = collection::vec((0u64..16, 0.0f64..1.0), 1..5);
        for _ in 0..200 {
            for (u, f) in s.generate(&mut rng) {
                assert!(u < 16);
                assert!((0.0..1.0).contains(&f));
            }
        }
    }

    proptest! {
        #[test]
        fn macro_binds_and_runs(x in 0u64..100, v in collection::vec(0.0f64..1.0, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.is_empty(), false);
        }
    }
}
