//! Command-line interface for the `datacube-dp` binary.
//!
//! The argument grammar is deliberately small and hand-parsed (no external
//! dependency):
//!
//! ```text
//! datacube-dp release --dataset adult|nltcs --workload q1|q1star|q1a|q2|q2star|q2a
//!                     --strategy f|q|c|i --budgets uniform|optimal
//!                     --epsilon <f64> [--delta <f64>] [--seed <u64>] [--batch <n>]
//!                     [--cluster fast|serial|faithful]
//!                     [--nonnegative] [--json] [--output <path>]
//! datacube-dp plan    --dataset adult|nltcs --workload <label> --strategy f|q|c|i
//!                     --budgets uniform|optimal --epsilon <f64> [--delta <f64>]
//!                     [--cluster fast|serial|faithful] [--output <path>]
//! datacube-dp inspect --dataset adult|nltcs
//! ```
//!
//! `release` runs through the two-phase [`dp_core::api`]: it compiles one
//! data-independent [`Plan`], binds the dataset in a [`Session`], and
//! serves `--batch N` deterministic releases (seeds `seed..seed+N`) from
//! that single plan — one budget solve for the whole batch. `plan` stops
//! after phase 1 and emits the serialized plan document, which another
//! process can load without re-solving.

use dp_core::prelude::*;
use std::fmt::Write as _;

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a batch of private releases and print/serialize the marginals.
    Release(ReleaseArgs),
    /// Compile a data-independent release plan and emit it as JSON.
    Plan(PlanArgs),
    /// Print dataset/schema statistics.
    Inspect {
        /// Dataset selector.
        dataset: DatasetArg,
    },
    /// Run the budget-metered release service.
    Serve(ServeArgs),
    /// One-shot client call against a running service.
    Client(ClientArgs),
    /// Print usage.
    Help,
}

/// Dataset selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetArg {
    /// The Adult census schema (synthetic stand-in or `data/adult.data`).
    Adult,
    /// The NLTCS disability schema (synthetic stand-in or `data/nltcs.csv`).
    Nltcs,
}

/// Arguments of the `release` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleaseArgs {
    /// Which dataset to release over.
    pub dataset: DatasetArg,
    /// Workload family label.
    pub workload: String,
    /// Strategy to use.
    pub strategy: StrategyKind,
    /// Budget allocation mode.
    pub budgets: Budgeting,
    /// Privacy ε.
    pub epsilon: f64,
    /// Optional δ (switches to the Gaussian mechanism).
    pub delta: Option<f64>,
    /// Cluster-strategy search configuration (only used with `--strategy c`).
    pub cluster: ClusterConfig,
    /// RNG seed of the first release; release `i` uses `seed + i`.
    pub seed: u64,
    /// Number of releases to draw from the one compiled plan. When > 1 the
    /// output is a JSON array with one per-release document per seed.
    pub batch: usize,
    /// Post-process to non-negative integral marginals.
    pub nonnegative: bool,
    /// Emit the full release (label, ε, budgets, answers) as a
    /// machine-consumable JSON document per release instead of the
    /// marginal list.
    pub json: bool,
    /// Optional JSON output path.
    pub output: Option<String>,
}

/// Arguments of the `plan` subcommand (the data-independent subset of
/// [`ReleaseArgs`]: the dataset is consulted only for its schema).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanArgs {
    /// Which dataset's schema to plan against.
    pub dataset: DatasetArg,
    /// Workload family label.
    pub workload: String,
    /// Strategy to use.
    pub strategy: StrategyKind,
    /// Budget allocation mode.
    pub budgets: Budgeting,
    /// Privacy ε.
    pub epsilon: f64,
    /// Optional δ (switches to the Gaussian mechanism).
    pub delta: Option<f64>,
    /// Cluster-strategy search configuration (only used with `--strategy c`).
    pub cluster: ClusterConfig,
    /// Optional JSON output path.
    pub output: Option<String>,
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port;
    /// the resolved address is printed on stdout).
    pub addr: String,
    /// Datasets to load at startup (default: both).
    pub datasets: Vec<DatasetArg>,
    /// Optional path of the persistent budget ledger (write-ahead JSON
    /// lines); without it budgets reset with the process.
    pub ledger: Option<String>,
    /// Sync one ledger record per `sync_data` instead of group-committing
    /// concurrent records under one sync (`--wal-sync per-record`; the
    /// default is group commit). Only meaningful with `--ledger`.
    pub wal_sync_per_record: bool,
    /// Admin bearer token; switches the service to the operator auth
    /// policy (tenant ops need per-tenant tokens, `open`/`shutdown` need
    /// this token). Without it the server trusts every peer.
    pub admin_token: Option<String>,
    /// Optional service-wide ε cap across *all* tenants (the per-dataset
    /// global ledger).
    pub global_epsilon: Option<f64>,
    /// Optional service-wide δ cap (requires `--global-epsilon`).
    pub global_delta: Option<f64>,
    /// Cap on concurrently served connections; excess connections are
    /// shed in-band with the retryable `overloaded` error.
    pub max_connections: Option<usize>,
    /// Cap on concurrently in-flight releases *per tenant*; excess
    /// releases are shed the same way.
    pub max_inflight: Option<usize>,
}

/// One-shot client operations (the `client` subcommand).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// `open`: create the tenant's budget ledger.
    Open {
        /// Tenant name.
        tenant: String,
        /// Total ε allowance.
        epsilon: f64,
        /// Optional total δ allowance.
        delta: Option<f64>,
        /// Bearer token to install for the tenant (required when the
        /// server runs the operator auth policy).
        token: Option<String>,
    },
    /// `register`: have the server compile + register a plan.
    Register {
        /// Tenant name.
        tenant: String,
        /// Which dataset's schema to plan against.
        dataset: DatasetArg,
        /// Workload family label.
        workload: String,
        /// Strategy to use.
        strategy: StrategyKind,
        /// Budget allocation mode.
        budgets: Budgeting,
        /// Per-release privacy ε.
        epsilon: f64,
        /// Optional per-release δ.
        delta: Option<f64>,
    },
    /// `bind`: bind a registered plan to a loaded table.
    Bind {
        /// Tenant name.
        tenant: String,
        /// Plan id returned by `register`.
        plan: String,
        /// Loaded table name (`adult` or `nltcs`).
        table: String,
    },
    /// `release`: draw a batch of deterministic releases.
    Release {
        /// Tenant name.
        tenant: String,
        /// Session id returned by `bind`.
        session: String,
        /// Seed of the first release; release `i` uses `seed + i`.
        seed: u64,
        /// Number of releases (seeds `seed..seed+batch`).
        batch: usize,
        /// Explicit idempotency key. Re-running the command with the same
        /// key (after a timeout, crash, or server restart) returns the
        /// originally charged release without debiting again; without it
        /// a fresh key is minted per run.
        request_id: Option<String>,
    },
    /// `stream-open`: open (or re-open) a streaming session over a
    /// registered plan. Idempotent and non-destructive: reopening keeps
    /// every delta already ingested.
    StreamOpen {
        /// Tenant name.
        tenant: String,
        /// Plan id returned by `register`.
        plan: String,
        /// Optional loaded table seeding the stream (`adult` or `nltcs`);
        /// without it the stream starts empty.
        table: Option<String>,
    },
    /// `ingest`: push one record-level delta into a stream (uncharged).
    Ingest {
        /// Tenant name.
        tenant: String,
        /// Stream id returned by `stream-open`.
        stream: String,
        /// Flat cell index of the affected record.
        cell: u64,
        /// Count delta at that cell (negative retracts; default 1).
        delta: f64,
    },
    /// `release-current`: draw a charged release of the stream's current
    /// state — one iteration of the continual-release loop.
    ReleaseCurrent {
        /// Tenant name.
        tenant: String,
        /// Stream id returned by `stream-open`.
        stream: String,
        /// Seed of the first release; release `i` uses `seed + i`.
        seed: u64,
        /// Number of releases (seeds `seed..seed+batch`).
        batch: usize,
        /// Explicit idempotency key: re-running the command with the same
        /// key replays the originally charged bytes without debiting
        /// again, which is what a crashed publisher re-drives.
        request_id: Option<String>,
    },
    /// `status`: print the tenant's budget position.
    Status {
        /// Tenant name.
        tenant: String,
    },
    /// `ping`: liveness check; prints the server's loaded tables.
    Ping,
    /// `shutdown`: stop the server cleanly.
    Shutdown,
}

/// Arguments of the `client` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientArgs {
    /// Address of the running service.
    pub addr: String,
    /// Bearer credential sent with every request (a tenant token, or the
    /// admin token for `open`/`shutdown`).
    pub auth: Option<String>,
    /// Socket deadline in milliseconds applied to connect/read/write
    /// (default 30000; 0 disables the deadlines). Finite by default so a
    /// wedged server can never hang the CLI forever.
    pub timeout_ms: u64,
    /// Retries after the first attempt for idempotent requests
    /// (default 4; 0 disables retrying).
    pub retries: u32,
    /// The operation to perform.
    pub op: ClientOp,
}

/// CLI parse errors, rendered to the user verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
datacube-dp — differentially private release of datacubes and marginals

USAGE:
  datacube-dp release --dataset <adult|nltcs> --workload <q1|q1star|q1a|q2|q2star|q2a>
                      --strategy <f|q|c|i> --budgets <uniform|optimal>
                      --epsilon <f64> [--delta <f64>] [--seed <u64>] [--batch <n>]
                      [--cluster <fast|serial|faithful>]
                      [--nonnegative] [--json] [--output <path.json>]
  datacube-dp plan    --dataset <adult|nltcs> --workload <label> --strategy <f|q|c|i>
                      --budgets <uniform|optimal> --epsilon <f64> [--delta <f64>]
                      [--cluster <fast|serial|faithful>] [--output <path.json>]
  datacube-dp inspect --dataset <adult|nltcs>
  datacube-dp serve   --addr <host:port> [--dataset <adult|nltcs>]...
                      [--ledger <path.jsonl>] [--wal-sync <group|per-record>]
                      [--admin-token <secret>]
                      [--global-epsilon <f64> [--global-delta <f64>]]
                      [--max-connections <n>] [--max-inflight <n>]
  datacube-dp client  --addr <host:port> [--auth <token>]
                      [--timeout-ms <u64>] [--retries <n>] <op> [op flags]
      open     --tenant <t> --epsilon <f64> [--delta <f64>] [--token <secret>]
      register --tenant <t> --dataset <adult|nltcs> --workload <label>
               --strategy <f|q|c|i> [--budgets <uniform|optimal>]
               --epsilon <f64> [--delta <f64>]
      bind     --tenant <t> --plan <id> --table <adult|nltcs>
      release  --tenant <t> --session <id> [--seed <u64>] [--batch <n>]
               [--request-id <id>]
      stream-open     --tenant <t> --plan <id> [--table <adult|nltcs>]
      ingest          --tenant <t> --stream <id> --cell <u64> [--delta <f64>]
      release-current --tenant <t> --stream <id> [--seed <u64>] [--batch <n>]
                      [--request-id <id>]
      status   --tenant <t>
      ping | shutdown
  datacube-dp help

`release` compiles one data-independent plan, binds the dataset, and draws
--batch deterministic releases (seeds seed..seed+batch) from it; --batch > 1
emits one JSON array (marginal lists, or full documents with --json).
`plan` stops after compilation and emits the serialized plan document.
`serve` runs the budget-metered multi-tenant release service (JSON lines
over TCP; with --ledger, spent budget survives restarts — records are
group-committed by default, one fsync per batch of concurrent requests;
--wal-sync per-record restores the serialized one-fsync-per-record
baseline). --admin-token
switches it to the operator auth policy: `open`/`shutdown` need --auth set
to the admin token, `open` installs the tenant's --token, and tenant ops
need --auth set to that tenant token; without --admin-token every peer is
trusted (loopback/dev only). --global-epsilon adds a service-wide budget
cap across all tenants. --max-connections / --max-inflight bound concurrent
connections and per-tenant in-flight releases; excess load is shed with the
retryable `overloaded` error. `client` performs one service call and prints
the response; socket deadlines are finite by default (--timeout-ms 30000,
0 disables them) and idempotent calls are retried --retries times with
backoff. `client release --request-id` pins the idempotency key, so
re-running the exact command after a timeout or crash returns the already
charged release instead of debiting again.
`client stream-open` opens a per-tenant streaming session (optionally
seeded from a loaded table; reopening never resets it), `ingest` pushes one
uncharged record-level delta (O(Δ) — no rebind), and `release-current`
draws a charged release of the stream's current state; with --request-id it
is idempotent like `release`, so a crashed publisher re-drives its id
schedule and is charged exactly once per id.
`--cluster` picks the cluster-strategy (`--strategy c`) search: `fast` (the
optimized incremental search, default), `serial` (same, without the rayon
fan-out), or `faithful` (the paper-faithful exponential candidate walk of
the Figure-6 reproduction); all three produce the identical clustering.
";

fn parse_dataset(v: &str) -> Result<DatasetArg, CliError> {
    match v {
        "adult" => Ok(DatasetArg::Adult),
        "nltcs" => Ok(DatasetArg::Nltcs),
        other => Err(CliError(format!("unknown dataset {other:?} (adult|nltcs)"))),
    }
}

fn parse_strategy(v: &str) -> Result<StrategyKind, CliError> {
    match v {
        "f" | "fourier" => Ok(StrategyKind::Fourier),
        "q" | "workload" => Ok(StrategyKind::Workload),
        "c" | "cluster" => Ok(StrategyKind::Cluster),
        "i" | "identity" => Ok(StrategyKind::Identity),
        other => Err(CliError(format!("unknown strategy {other:?} (f|q|c|i)"))),
    }
}

fn parse_cluster(v: &str) -> Result<ClusterConfig, CliError> {
    match v {
        "fast" => Ok(ClusterConfig::FAST),
        "serial" => Ok(ClusterConfig::FAST.serial()),
        "faithful" => Ok(ClusterConfig::PAPER),
        other => Err(CliError(format!(
            "unknown cluster search {other:?} (fast|serial|faithful)"
        ))),
    }
}

fn parse_budgets(v: &str) -> Result<Budgeting, CliError> {
    match v {
        "uniform" => Ok(Budgeting::Uniform),
        "optimal" => Ok(Budgeting::Optimal),
        other => Err(CliError(format!(
            "unknown budgeting {other:?} (uniform|optimal)"
        ))),
    }
}

/// Parses a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "inspect" => {
            let mut dataset = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--dataset" => {
                        let v = it
                            .next()
                            .ok_or(CliError("--dataset needs a value".into()))?;
                        dataset = Some(parse_dataset(v)?);
                    }
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Inspect {
                dataset: dataset.ok_or(CliError("inspect requires --dataset".into()))?,
            })
        }
        "serve" => {
            let mut addr = None;
            let mut datasets = Vec::new();
            let mut ledger = None;
            let mut wal_sync_per_record = false;
            let mut admin_token = None;
            let mut global_epsilon = None;
            let mut global_delta = None;
            let mut max_connections = None;
            let mut max_inflight = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, CliError> {
                    it.next().ok_or(CliError(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--addr" => addr = Some(value("--addr")?.clone()),
                    "--dataset" => {
                        let d = parse_dataset(value("--dataset")?)?;
                        if !datasets.contains(&d) {
                            datasets.push(d);
                        }
                    }
                    "--ledger" => ledger = Some(value("--ledger")?.clone()),
                    "--wal-sync" => {
                        wal_sync_per_record = match value("--wal-sync")?.as_str() {
                            "group" => false,
                            "per-record" => true,
                            other => {
                                return Err(CliError(format!(
                                    "bad --wal-sync {other:?}: expected `group` or `per-record`"
                                )))
                            }
                        }
                    }
                    "--admin-token" => admin_token = Some(value("--admin-token")?.clone()),
                    "--global-epsilon" => {
                        global_epsilon = Some(
                            value("--global-epsilon")?
                                .parse::<f64>()
                                .map_err(|e| CliError(format!("bad --global-epsilon: {e}")))?,
                        )
                    }
                    "--global-delta" => {
                        global_delta = Some(
                            value("--global-delta")?
                                .parse::<f64>()
                                .map_err(|e| CliError(format!("bad --global-delta: {e}")))?,
                        )
                    }
                    "--max-connections" => {
                        max_connections = Some(
                            value("--max-connections")?
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or(CliError(
                                    "bad --max-connections: need an integer ≥ 1".into(),
                                ))?,
                        )
                    }
                    "--max-inflight" => {
                        max_inflight = Some(
                            value("--max-inflight")?
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or(CliError(
                                    "bad --max-inflight: need an integer ≥ 1".into(),
                                ))?,
                        )
                    }
                    other => return Err(CliError(format!("unknown flag {other:?} for serve"))),
                }
            }
            if datasets.is_empty() {
                datasets = vec![DatasetArg::Adult, DatasetArg::Nltcs];
            }
            if global_delta.is_some() && global_epsilon.is_none() {
                return Err(CliError("--global-delta requires --global-epsilon".into()));
            }
            Ok(Command::Serve(ServeArgs {
                addr: addr.ok_or(CliError("serve requires --addr".into()))?,
                datasets,
                ledger,
                wal_sync_per_record,
                admin_token,
                global_epsilon,
                global_delta,
                max_connections,
                max_inflight,
            }))
        }
        "client" => parse_client(&args[1..]),
        "release" | "plan" => {
            let is_plan = sub == "plan";
            let mut dataset = None;
            let mut workload = None;
            let mut strategy = None;
            let mut budgets = Budgeting::Optimal;
            let mut cluster = ClusterConfig::default();
            let mut epsilon = None;
            let mut delta = None;
            let mut seed = 42u64;
            let mut batch = 1usize;
            let mut nonnegative = false;
            let mut json = false;
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, CliError> {
                    it.next().ok_or(CliError(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--dataset" => dataset = Some(parse_dataset(value("--dataset")?)?),
                    "--workload" => workload = Some(value("--workload")?.clone()),
                    "--strategy" => strategy = Some(parse_strategy(value("--strategy")?)?),
                    "--budgets" => budgets = parse_budgets(value("--budgets")?)?,
                    "--cluster" => cluster = parse_cluster(value("--cluster")?)?,
                    "--epsilon" => {
                        epsilon = Some(
                            value("--epsilon")?
                                .parse::<f64>()
                                .map_err(|e| CliError(format!("bad --epsilon: {e}")))?,
                        )
                    }
                    "--delta" => {
                        delta = Some(
                            value("--delta")?
                                .parse::<f64>()
                                .map_err(|e| CliError(format!("bad --delta: {e}")))?,
                        )
                    }
                    "--seed" if !is_plan => {
                        seed = value("--seed")?
                            .parse::<u64>()
                            .map_err(|e| CliError(format!("bad --seed: {e}")))?
                    }
                    "--batch" if !is_plan => {
                        batch = value("--batch")?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or(CliError("bad --batch: need an integer ≥ 1".into()))?
                    }
                    "--nonnegative" if !is_plan => nonnegative = true,
                    "--json" if !is_plan => json = true,
                    "--output" => output = Some(value("--output")?.clone()),
                    other => return Err(CliError(format!("unknown flag {other:?} for {sub}"))),
                }
            }
            let dataset = dataset.ok_or(CliError(format!("{sub} requires --dataset")))?;
            let workload = workload.ok_or(CliError(format!("{sub} requires --workload")))?;
            let strategy = strategy.ok_or(CliError(format!("{sub} requires --strategy")))?;
            let epsilon = epsilon.ok_or(CliError(format!("{sub} requires --epsilon")))?;
            if is_plan {
                Ok(Command::Plan(PlanArgs {
                    dataset,
                    workload,
                    strategy,
                    budgets,
                    epsilon,
                    delta,
                    cluster,
                    output,
                }))
            } else {
                Ok(Command::Release(ReleaseArgs {
                    dataset,
                    workload,
                    strategy,
                    budgets,
                    epsilon,
                    delta,
                    cluster,
                    seed,
                    batch,
                    nonnegative,
                    json,
                    output,
                }))
            }
        }
        other => Err(CliError(format!("unknown subcommand {other:?}"))),
    }
}

/// Parses the `client` subcommand: `--addr <a>` plus one op keyword and
/// its flags, in any order.
fn parse_client(args: &[String]) -> Result<Command, CliError> {
    let mut addr = None;
    let mut auth = None;
    let mut token = None;
    let mut op_name: Option<&str> = None;
    let mut tenant = None;
    let mut dataset = None;
    let mut workload = None;
    let mut strategy = None;
    let mut budgets = Budgeting::Optimal;
    let mut epsilon = None;
    let mut delta = None;
    let mut plan = None;
    let mut table = None;
    let mut session = None;
    let mut stream = None;
    let mut cell = None;
    let mut seed = 42u64;
    let mut batch = 1usize;
    let mut request_id = None;
    let mut timeout_ms = 30_000u64;
    let mut retries = 4u32;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, CliError> {
            it.next().ok_or(CliError(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?.clone()),
            "--auth" => auth = Some(value("--auth")?.clone()),
            "--token" => token = Some(value("--token")?.clone()),
            "--tenant" => tenant = Some(value("--tenant")?.clone()),
            "--dataset" => dataset = Some(parse_dataset(value("--dataset")?)?),
            "--workload" => workload = Some(value("--workload")?.clone()),
            "--strategy" => strategy = Some(parse_strategy(value("--strategy")?)?),
            "--budgets" => budgets = parse_budgets(value("--budgets")?)?,
            "--epsilon" => {
                epsilon = Some(
                    value("--epsilon")?
                        .parse::<f64>()
                        .map_err(|e| CliError(format!("bad --epsilon: {e}")))?,
                )
            }
            "--delta" => {
                delta = Some(
                    value("--delta")?
                        .parse::<f64>()
                        .map_err(|e| CliError(format!("bad --delta: {e}")))?,
                )
            }
            "--plan" => plan = Some(value("--plan")?.clone()),
            "--table" => table = Some(value("--table")?.clone()),
            "--session" => session = Some(value("--session")?.clone()),
            "--stream" => stream = Some(value("--stream")?.clone()),
            "--cell" => {
                cell = Some(
                    value("--cell")?
                        .parse::<u64>()
                        .map_err(|e| CliError(format!("bad --cell: {e}")))?,
                )
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse::<u64>()
                    .map_err(|e| CliError(format!("bad --seed: {e}")))?
            }
            "--batch" => {
                batch = value("--batch")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(CliError("bad --batch: need an integer ≥ 1".into()))?
            }
            "--request-id" => request_id = Some(value("--request-id")?.clone()),
            "--timeout-ms" => {
                timeout_ms = value("--timeout-ms")?
                    .parse::<u64>()
                    .map_err(|e| CliError(format!("bad --timeout-ms: {e}")))?
            }
            "--retries" => {
                retries = value("--retries")?
                    .parse::<u32>()
                    .map_err(|e| CliError(format!("bad --retries: {e}")))?
            }
            other if !other.starts_with("--") && op_name.is_none() => op_name = Some(other),
            other => return Err(CliError(format!("unknown flag {other:?} for client"))),
        }
    }

    let addr = addr.ok_or(CliError("client requires --addr".into()))?;
    let need_tenant =
        |t: Option<String>, op: &str| t.ok_or(CliError(format!("client {op} requires --tenant")));
    let op = match op_name.ok_or(CliError(
        "client requires an operation (open|register|bind|release|stream-open|ingest|release-current|status|ping|shutdown)"
            .into(),
    ))? {
        "open" => ClientOp::Open {
            tenant: need_tenant(tenant, "open")?,
            epsilon: epsilon.ok_or(CliError("client open requires --epsilon".into()))?,
            delta,
            token,
        },
        "register" => ClientOp::Register {
            tenant: need_tenant(tenant, "register")?,
            dataset: dataset.ok_or(CliError("client register requires --dataset".into()))?,
            workload: workload.ok_or(CliError("client register requires --workload".into()))?,
            strategy: strategy.ok_or(CliError("client register requires --strategy".into()))?,
            budgets,
            epsilon: epsilon.ok_or(CliError("client register requires --epsilon".into()))?,
            delta,
        },
        "bind" => ClientOp::Bind {
            tenant: need_tenant(tenant, "bind")?,
            plan: plan.ok_or(CliError("client bind requires --plan".into()))?,
            table: table.ok_or(CliError("client bind requires --table".into()))?,
        },
        "release" => ClientOp::Release {
            tenant: need_tenant(tenant, "release")?,
            session: session.ok_or(CliError("client release requires --session".into()))?,
            seed,
            batch,
            request_id,
        },
        "stream-open" => ClientOp::StreamOpen {
            tenant: need_tenant(tenant, "stream-open")?,
            plan: plan.ok_or(CliError("client stream-open requires --plan".into()))?,
            table,
        },
        "ingest" => ClientOp::Ingest {
            tenant: need_tenant(tenant, "ingest")?,
            stream: stream.ok_or(CliError("client ingest requires --stream".into()))?,
            cell: cell.ok_or(CliError("client ingest requires --cell".into()))?,
            delta: delta.unwrap_or(1.0),
        },
        "release-current" => ClientOp::ReleaseCurrent {
            tenant: need_tenant(tenant, "release-current")?,
            stream: stream.ok_or(CliError("client release-current requires --stream".into()))?,
            seed,
            batch,
            request_id,
        },
        "status" => ClientOp::Status {
            tenant: need_tenant(tenant, "status")?,
        },
        "ping" => ClientOp::Ping,
        "shutdown" => ClientOp::Shutdown,
        other => return Err(CliError(format!("unknown client operation {other:?}"))),
    };
    Ok(Command::Client(ClientArgs {
        addr,
        auth,
        timeout_ms,
        retries,
        op,
    }))
}

/// Builds the workload for a label over a schema.
pub fn build_workload(schema: &Schema, label: &str) -> Result<Workload, CliError> {
    let parse = |s: &str| -> Result<usize, CliError> {
        s.parse::<usize>()
            .map_err(|_| CliError(format!("bad workload label {label:?}")))
    };
    let res = if let Some(k) = label.strip_prefix('q').and_then(|r| r.strip_suffix("star")) {
        Workload::k_way_plus_half(schema, parse(k)?)
    } else if let Some(k) = label.strip_prefix('q').and_then(|r| r.strip_suffix('a')) {
        Workload::k_way_plus_attr(schema, parse(k)?, 0)
    } else if let Some(k) = label.strip_prefix('q') {
        Workload::all_k_way(schema, parse(k)?)
    } else {
        return Err(CliError(format!(
            "bad workload label {label:?} (q<k>, q<k>star, q<k>a)"
        )));
    };
    res.map_err(|e| CliError(format!("workload construction failed: {e}")))
}

/// The canonical table name of a dataset (used as the service's data
/// store key and in `client bind --table`).
pub fn dataset_name(dataset: DatasetArg) -> &'static str {
    match dataset {
        DatasetArg::Adult => "adult",
        DatasetArg::Nltcs => "nltcs",
    }
}

/// The dataset's schema alone — all `plan` needs, since plans are
/// data-independent.
pub fn dataset_schema(dataset: DatasetArg) -> Schema {
    match dataset {
        DatasetArg::Adult => dp_data::adult_schema(),
        DatasetArg::Nltcs => dp_data::nltcs_schema(),
    }
}

/// Builds the privacy level from ε and the optional δ.
pub fn privacy_level(epsilon: f64, delta: Option<f64>) -> PrivacyLevel {
    match delta {
        None => PrivacyLevel::Pure { epsilon },
        Some(delta) => PrivacyLevel::Approx { epsilon, delta },
    }
}

/// Compiles the data-independent plan for a parsed workload request.
pub fn compile_plan(
    schema: &Schema,
    workload: Workload,
    strategy: StrategyKind,
    budgets: Budgeting,
    privacy: PrivacyLevel,
    cluster: ClusterConfig,
) -> Result<Plan, CliError> {
    PlanBuilder::marginals(workload, strategy)
        .budgeting(budgets)
        .privacy(privacy)
        .cluster_config(cluster)
        .for_schema(schema)
        .compile()
        .map_err(|e| CliError(format!("plan compilation failed: {e}")))
}

/// Loads the dataset's schema and contingency table.
pub fn load_dataset(
    dataset: DatasetArg,
    seed: u64,
) -> Result<(Schema, ContingencyTable), CliError> {
    let (schema, records) = match dataset {
        DatasetArg::Adult => {
            let schema = dp_data::adult_schema();
            let (records, _) = dp_data::csv::adult_records_or_synthetic(
                std::path::Path::new("data/adult.data"),
                seed,
            )
            .map_err(|e| CliError(format!("loading adult: {e}")))?;
            (schema, records)
        }
        DatasetArg::Nltcs => {
            let schema = dp_data::nltcs_schema();
            let (records, _) = dp_data::csv::nltcs_records_or_synthetic(
                std::path::Path::new("data/nltcs.csv"),
                seed,
            )
            .map_err(|e| CliError(format!("loading nltcs: {e}")))?;
            (schema, records)
        }
    };
    let table = ContingencyTable::from_records(&schema, &records)
        .map_err(|e| CliError(format!("building table: {e}")))?;
    Ok((schema, table))
}

/// Serializes a full release — label, achieved ε, budgets and answers — as
/// one machine-consumable JSON document (the `--json` output).
pub fn release_to_json(release: &dp_core::Release) -> String {
    serde_json::to_string_pretty(release).expect("release serialization is infallible")
}

/// Serializes a whole release batch as one JSON array (the `--json` output
/// when `--batch > 1`).
pub fn release_batch_to_json(releases: &[dp_core::Release]) -> String {
    serde_json::to_string_pretty(releases).expect("release serialization is infallible")
}

/// Serializes a compiled plan as its shippable JSON document.
pub fn plan_to_json(plan: &Plan) -> String {
    serde_json::to_string_pretty(plan).expect("plan serialization is infallible")
}

/// Serializes released marginals as a human-readable JSON document.
pub fn marginals_to_json(answers: &[dp_core::marginal::MarginalTable]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in answers.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"attributes\": \"{}\", \"cells\": {:?}}}",
            m.mask(),
            m.values()
        );
        out.push_str(if i + 1 < answers.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&sv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&sv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn full_release_command() {
        let cmd = parse_args(&sv(&[
            "release",
            "--dataset",
            "nltcs",
            "--workload",
            "q2",
            "--strategy",
            "f",
            "--budgets",
            "optimal",
            "--epsilon",
            "0.5",
            "--seed",
            "9",
            "--batch",
            "4",
            "--nonnegative",
            "--json",
            "--output",
            "out.json",
        ]))
        .unwrap();
        let Command::Release(a) = cmd else {
            panic!("expected release");
        };
        assert_eq!(a.dataset, DatasetArg::Nltcs);
        assert_eq!(a.workload, "q2");
        assert_eq!(a.strategy, StrategyKind::Fourier);
        assert_eq!(a.budgets, Budgeting::Optimal);
        assert_eq!(a.epsilon, 0.5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.batch, 4);
        assert!(a.nonnegative);
        assert!(a.json);
        assert_eq!(a.output.as_deref(), Some("out.json"));
        assert_eq!(a.delta, None);
    }

    #[test]
    fn plan_command_parses_and_rejects_release_only_flags() {
        let cmd = parse_args(&sv(&[
            "plan",
            "--dataset",
            "adult",
            "--workload",
            "q1",
            "--strategy",
            "c",
            "--budgets",
            "uniform",
            "--epsilon",
            "2.0",
            "--delta",
            "1e-6",
            "--output",
            "plan.json",
        ]))
        .unwrap();
        let Command::Plan(a) = cmd else {
            panic!("expected plan");
        };
        assert_eq!(a.dataset, DatasetArg::Adult);
        assert_eq!(a.strategy, StrategyKind::Cluster);
        assert_eq!(a.budgets, Budgeting::Uniform);
        assert_eq!(a.delta, Some(1e-6));
        assert_eq!(a.cluster, ClusterConfig::default());
        assert_eq!(a.output.as_deref(), Some("plan.json"));
        // Seeds/batches belong to `release`, not the data-independent plan.
        assert!(parse_args(&sv(&["plan", "--seed", "1"])).is_err());
        assert!(parse_args(&sv(&["plan", "--batch", "2"])).is_err());
        assert!(parse_args(&sv(&["release", "--batch", "0"])).is_err());
    }

    #[test]
    fn cluster_search_flag_parses_all_modes() {
        let base = [
            "release",
            "--dataset",
            "nltcs",
            "--workload",
            "q1",
            "--strategy",
            "c",
            "--epsilon",
            "1.0",
            "--cluster",
        ];
        for (value, expected) in [
            ("fast", ClusterConfig::FAST),
            ("serial", ClusterConfig::FAST.serial()),
            ("faithful", ClusterConfig::PAPER),
        ] {
            let mut args: Vec<&str> = base.to_vec();
            args.push(value);
            let Command::Release(a) = parse_args(&sv(&args)).unwrap() else {
                panic!("expected release");
            };
            assert_eq!(a.cluster, expected, "--cluster {value}");
        }
        assert!(parse_args(&sv(&["release", "--cluster", "turbo"])).is_err());
        assert!(parse_args(&sv(&["plan", "--cluster"])).is_err());
    }

    #[test]
    fn release_json_document_is_parseable() {
        use dp_core::prelude::*;
        let t = ContingencyTable::from_counts(vec![3.0, 1.0, 0.0, 2.0]);
        let w = Workload::new(2, vec![crate::core::AttrMask(0b11)]).unwrap();
        let plan = PlanBuilder::marginals(w, StrategyKind::Fourier)
            .privacy(PrivacyLevel::Pure { epsilon: 1.0 })
            .compile()
            .unwrap();
        let session = Session::bind(&plan, &t).unwrap();
        let release = session.release(4).unwrap().into_release().unwrap();
        let doc = release_to_json(&release);
        let back: dp_core::Release = serde_json::from_str(&doc).unwrap();
        assert_eq!(back.label, release.label);
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.answers[0].values(), release.answers[0].values());

        // Batches serialize as one JSON array of the same documents.
        let batch: Vec<_> = session
            .release_batch(&[4, 5])
            .unwrap()
            .into_iter()
            .map(|r| r.into_release().unwrap())
            .collect();
        let arr = release_batch_to_json(&batch);
        let back: Vec<dp_core::Release> = serde_json::from_str(&arr).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].answers[0].values(), release.answers[0].values());
    }

    #[test]
    fn plan_json_document_roundtrips() {
        let schema = dataset_schema(DatasetArg::Nltcs);
        let w = build_workload(&schema, "q1").unwrap();
        let plan = compile_plan(
            &schema,
            w,
            StrategyKind::Fourier,
            Budgeting::Optimal,
            privacy_level(0.5, None),
            ClusterConfig::default(),
        )
        .unwrap();
        let doc = plan_to_json(&plan);
        let back: Plan = serde_json::from_str(&doc).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn serve_command_parses() {
        let cmd = parse_args(&sv(&["serve", "--addr", "127.0.0.1:0"])).unwrap();
        let Command::Serve(a) = cmd else {
            panic!("expected serve");
        };
        assert_eq!(a.addr, "127.0.0.1:0");
        assert_eq!(a.datasets, vec![DatasetArg::Adult, DatasetArg::Nltcs]);
        assert_eq!(a.ledger, None);
        assert_eq!(a.admin_token, None);
        assert_eq!(a.global_epsilon, None);
        assert!(!a.wal_sync_per_record, "group commit is the default");

        let cmd = parse_args(&sv(&[
            "serve",
            "--addr",
            "0.0.0.0:7878",
            "--dataset",
            "nltcs",
            "--dataset",
            "nltcs",
            "--ledger",
            "budget.jsonl",
            "--admin-token",
            "s3cret",
            "--global-epsilon",
            "8.0",
            "--global-delta",
            "1e-6",
        ]))
        .unwrap();
        let Command::Serve(a) = cmd else {
            panic!("expected serve");
        };
        assert_eq!(a.datasets, vec![DatasetArg::Nltcs], "duplicates collapse");
        assert_eq!(a.ledger.as_deref(), Some("budget.jsonl"));
        assert_eq!(a.admin_token.as_deref(), Some("s3cret"));
        assert_eq!(a.global_epsilon, Some(8.0));
        assert_eq!(a.global_delta, Some(1e-6));
        assert_eq!(a.max_connections, None);
        assert_eq!(a.max_inflight, None);

        let Command::Serve(a) = parse_args(&sv(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--max-connections",
            "64",
            "--max-inflight",
            "2",
        ]))
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(a.max_connections, Some(64));
        assert_eq!(a.max_inflight, Some(2));
        assert!(parse_args(&sv(&["serve", "--addr", "x", "--max-connections", "0"])).is_err());
        assert!(parse_args(&sv(&["serve", "--addr", "x", "--max-inflight", "no"])).is_err());

        let Command::Serve(a) = parse_args(&sv(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--ledger",
            "l.jsonl",
            "--wal-sync",
            "per-record",
        ]))
        .unwrap() else {
            panic!("expected serve");
        };
        assert!(a.wal_sync_per_record);
        let Command::Serve(a) =
            parse_args(&sv(&["serve", "--addr", "x", "--wal-sync", "group"])).unwrap()
        else {
            panic!("expected serve");
        };
        assert!(!a.wal_sync_per_record);
        assert!(parse_args(&sv(&["serve", "--addr", "x", "--wal-sync", "fsync"])).is_err());

        assert!(parse_args(&sv(&["serve"])).is_err());
        assert!(parse_args(&sv(&["serve", "--addr", "x", "--json"])).is_err());
        assert!(
            parse_args(&sv(&["serve", "--addr", "x", "--global-delta", "1e-6"])).is_err(),
            "--global-delta without --global-epsilon"
        );
    }

    #[test]
    fn client_command_parses_every_op() {
        let base = ["client", "--addr", "127.0.0.1:7878"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            parse_args(&sv(&v))
        };

        let Command::Client(a) = with(&["open", "--tenant", "t", "--epsilon", "1.5"]).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(a.addr, "127.0.0.1:7878");
        assert_eq!(a.auth, None);
        assert_eq!(
            a.op,
            ClientOp::Open {
                tenant: "t".into(),
                epsilon: 1.5,
                delta: None,
                token: None
            }
        );

        let Command::Client(a) = with(&[
            "--auth",
            "admin",
            "open",
            "--tenant",
            "t",
            "--epsilon",
            "1.5",
            "--token",
            "tok",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(a.auth.as_deref(), Some("admin"));
        assert_eq!(
            a.op,
            ClientOp::Open {
                tenant: "t".into(),
                epsilon: 1.5,
                delta: None,
                token: Some("tok".into())
            }
        );

        let Command::Client(a) = with(&[
            "register",
            "--tenant",
            "t",
            "--dataset",
            "nltcs",
            "--workload",
            "q1",
            "--strategy",
            "f",
            "--epsilon",
            "0.5",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert!(matches!(
            a.op,
            ClientOp::Register {
                budgets: Budgeting::Optimal,
                ..
            }
        ));

        let Command::Client(a) = with(&[
            "release",
            "--tenant",
            "t",
            "--session",
            "s",
            "--seed",
            "7",
            "--batch",
            "3",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(
            a.op,
            ClientOp::Release {
                tenant: "t".into(),
                session: "s".into(),
                seed: 7,
                batch: 3,
                request_id: None
            }
        );
        assert_eq!(a.timeout_ms, 30_000, "deadlines default finite");
        assert_eq!(a.retries, 4);

        assert!(matches!(
            with(&["ping"]).unwrap(),
            Command::Client(ClientArgs {
                op: ClientOp::Ping,
                ..
            })
        ));
        assert!(matches!(
            with(&["shutdown"]).unwrap(),
            Command::Client(ClientArgs {
                op: ClientOp::Shutdown,
                ..
            })
        ));

        let Command::Client(a) = with(&[
            "--timeout-ms",
            "250",
            "--retries",
            "0",
            "release",
            "--tenant",
            "t",
            "--session",
            "s",
            "--request-id",
            "retry-0007",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(a.timeout_ms, 250);
        assert_eq!(a.retries, 0);
        assert!(matches!(
            a.op,
            ClientOp::Release { ref request_id, .. } if request_id.as_deref() == Some("retry-0007")
        ));
        assert!(with(&["--timeout-ms", "soon", "ping"]).is_err());
        assert!(with(&["--retries", "-1", "ping"]).is_err());

        // Missing pieces are reported.
        assert!(with(&["open", "--tenant", "t"]).is_err());
        assert!(with(&["bind", "--tenant", "t"]).is_err());
        assert!(with(&["status"]).is_err());
        assert!(with(&["frobnicate"]).is_err());
        assert!(parse_args(&sv(&["client", "ping"])).is_err(), "no --addr");
    }

    #[test]
    fn client_streaming_ops_parse() {
        let base = ["client", "--addr", "127.0.0.1:7878"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            parse_args(&sv(&v))
        };

        let Command::Client(a) = with(&["stream-open", "--tenant", "t", "--plan", "p1"]).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(
            a.op,
            ClientOp::StreamOpen {
                tenant: "t".into(),
                plan: "p1".into(),
                table: None
            }
        );
        let Command::Client(a) = with(&[
            "stream-open",
            "--tenant",
            "t",
            "--plan",
            "p1",
            "--table",
            "nltcs",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert!(matches!(
            a.op,
            ClientOp::StreamOpen { ref table, .. } if table.as_deref() == Some("nltcs")
        ));

        // ingest: --delta defaults to 1, negatives retract.
        let Command::Client(a) =
            with(&["ingest", "--tenant", "t", "--stream", "s", "--cell", "12"]).unwrap()
        else {
            panic!("expected client");
        };
        assert_eq!(
            a.op,
            ClientOp::Ingest {
                tenant: "t".into(),
                stream: "s".into(),
                cell: 12,
                delta: 1.0
            }
        );
        let Command::Client(a) = with(&[
            "ingest", "--tenant", "t", "--stream", "s", "--cell", "12", "--delta", "-1",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert!(matches!(a.op, ClientOp::Ingest { delta, .. } if delta == -1.0));

        let Command::Client(a) = with(&[
            "release-current",
            "--tenant",
            "t",
            "--stream",
            "s",
            "--seed",
            "7",
            "--batch",
            "2",
            "--request-id",
            "epoch-3",
        ])
        .unwrap() else {
            panic!("expected client");
        };
        assert_eq!(
            a.op,
            ClientOp::ReleaseCurrent {
                tenant: "t".into(),
                stream: "s".into(),
                seed: 7,
                batch: 2,
                request_id: Some("epoch-3".into())
            }
        );

        // Missing pieces are reported.
        assert!(with(&["stream-open", "--tenant", "t"]).is_err());
        assert!(with(&["ingest", "--tenant", "t", "--stream", "s"]).is_err());
        assert!(with(&["ingest", "--tenant", "t", "--stream", "s", "--cell", "x"]).is_err());
        assert!(with(&["release-current", "--tenant", "t"]).is_err());
    }

    #[test]
    fn missing_required_flags_are_reported() {
        let err = parse_args(&sv(&["release", "--dataset", "adult"])).unwrap_err();
        assert!(err.0.contains("--workload"));
        let err = parse_args(&sv(&["release", "--epsilon", "1.0"])).unwrap_err();
        assert!(err.0.contains("--dataset"));
        let err = parse_args(&sv(&["inspect"])).unwrap_err();
        assert!(err.0.contains("--dataset"));
    }

    #[test]
    fn bad_values_are_reported() {
        assert!(parse_args(&sv(&["release", "--dataset", "census"])).is_err());
        assert!(parse_args(&sv(&["release", "--strategy", "z"])).is_err());
        assert!(parse_args(&sv(&["release", "--epsilon", "abc"])).is_err());
        assert!(parse_args(&sv(&["bogus"])).is_err());
        assert!(parse_args(&sv(&["release", "--epsilon"])).is_err());
    }

    #[test]
    fn workload_labels() {
        let schema = Schema::binary(8).unwrap();
        assert_eq!(build_workload(&schema, "q1").unwrap().len(), 8);
        assert_eq!(build_workload(&schema, "q2").unwrap().len(), 28);
        assert_eq!(build_workload(&schema, "q1star").unwrap().len(), 22);
        assert_eq!(build_workload(&schema, "q1a").unwrap().len(), 15);
        assert!(build_workload(&schema, "w2").is_err());
        assert!(build_workload(&schema, "qx").is_err());
        assert!(build_workload(&schema, "q99").is_err());
    }

    #[test]
    fn json_rendering() {
        let m = vec![dp_core::marginal::MarginalTable::new(
            crate::core::AttrMask(0b11),
            vec![1.0, 2.0, 3.0, 4.0],
        )];
        let j = marginals_to_json(&m);
        assert!(j.contains("\"attributes\": \"{0,1}\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
