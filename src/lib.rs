//! Umbrella crate for the datacube-dp workspace: re-exports the public API
//! of every member crate so examples and downstream users can depend on a
//! single package.
//!
//! See [`dp_core`] for the release framework, [`dp_data`] for datasets,
//! [`dp_opt`] for the optimizers, [`dp_mech`] for the DP mechanisms and
//! [`dp_service`] for the budget-metered release service.

pub use dp_core as core;
pub use dp_data as data;
pub use dp_linalg as linalg;
pub use dp_mech as mech;
pub use dp_opt as opt;
pub use dp_service as service;

pub mod cli;

pub use dp_core::prelude;
