//! `datacube-dp` command-line tool: differentially private release of
//! marginal workloads over the bundled datasets, through the two-phase
//! plan/session API. See [`datacube_dp::cli`] for the argument grammar.

use datacube_dp::cli::{
    build_workload, compile_plan, dataset_name, dataset_schema, load_dataset, marginals_to_json,
    parse_args, plan_to_json, privacy_level, release_batch_to_json, release_to_json, ClientArgs,
    ClientOp, Command, PlanArgs, ReleaseArgs, ServeArgs, USAGE,
};
use datacube_dp::prelude::*;
use datacube_dp::service::{
    protocol, Accountant, Auth, Client, ClientConfig, DpService, Server, ServerLimits, TcpTransport,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Inspect { dataset }) => match run_inspect(dataset) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Ok(Command::Plan(args)) => match run_plan(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Ok(Command::Release(args)) => match run_release(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Ok(Command::Serve(args)) => match run_serve(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Ok(Command::Client(args)) => match run_client(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn run_inspect(dataset: datacube_dp::cli::DatasetArg) -> Result<(), String> {
    let (schema, table) = load_dataset(dataset, 20130401).map_err(|e| e.to_string())?;
    println!("attributes: {}", schema.num_attributes());
    for (i, a) in schema.attributes().iter().enumerate() {
        println!(
            "  [{i}] {} (cardinality {}, {} bits)",
            a.name,
            a.cardinality,
            a.bits()
        );
    }
    println!(
        "domain: 2^{} = {} cells",
        schema.domain_bits(),
        schema.domain_size()
    );
    println!("records: {}", table.total());
    Ok(())
}

/// Phase 1 only: compile the data-independent plan and emit its document.
/// No record is ever read — the dataset argument selects the schema.
fn run_plan(args: &PlanArgs) -> Result<(), String> {
    let schema = dataset_schema(args.dataset);
    let workload = build_workload(&schema, &args.workload).map_err(|e| e.to_string())?;
    let privacy = privacy_level(args.epsilon, args.delta);
    let plan = compile_plan(
        &schema,
        workload,
        args.strategy,
        args.budgets,
        privacy,
        args.cluster,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "compiled plan {}: {} queries, {} budget groups, achieved ε = {:.6}, predicted Var = {:.4e}",
        plan.label(),
        plan.spec().num_queries(),
        plan.solution().group_budgets.len(),
        plan.achieved_epsilon(),
        plan.predicted_variance(),
    );
    let json = plan_to_json(&plan);
    match &args.output {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Runs the budget-metered release service until a `shutdown` request
/// arrives. Prints the resolved listen address as the first stdout line so
/// scripts can capture an OS-picked port (`--addr 127.0.0.1:0`).
fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let mut accountant = match &args.ledger {
        Some(path) => {
            let sync = if args.wal_sync_per_record {
                datacube_dp::service::WalSync::PerRecord
            } else {
                datacube_dp::service::WalSync::Group
            };
            Accountant::with_wal_sync(std::path::Path::new(path), sync)
                .map_err(|e| e.to_string())?
        }
        None => Accountant::in_memory(),
    };
    if let Some(epsilon) = args.global_epsilon {
        accountant = accountant
            .with_global_budget(privacy_level(epsilon, args.global_delta))
            .map_err(|e| e.to_string())?;
    }
    let auth = match &args.admin_token {
        Some(token) => Auth::operator(token),
        None => Auth::trusted(),
    };
    let mut service = DpService::with_auth(accountant, auth);
    if let Some(cap) = args.max_inflight {
        service = service.with_tenant_inflight_cap(cap);
    }
    for &dataset in &args.datasets {
        let (_, table) = load_dataset(dataset, 20130401).map_err(|e| e.to_string())?;
        service.data().insert_table(dataset_name(dataset), table);
    }
    let transport = TcpTransport::bind(&args.addr).map_err(|e| e.to_string())?;
    let server = Server::with_limits(
        service,
        transport,
        ServerLimits {
            max_connections: args.max_connections,
        },
    );
    println!("{}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    eprintln!(
        "serving on {} with tables {:?}{}{}{}",
        server.addr(),
        server.service().data().names(),
        match &args.ledger {
            Some(p) if args.wal_sync_per_record => {
                format!(", persistent ledger at {p} (per-record sync)")
            }
            Some(p) => format!(", persistent ledger at {p} (group commit)"),
            None => ", in-memory budgets".into(),
        },
        if args.admin_token.is_some() {
            ", operator auth"
        } else {
            ", trusted peers (no auth)"
        },
        match args.global_epsilon {
            Some(eps) => format!(", global budget ε = {eps}"),
            None => String::new(),
        }
    );
    server.run().map_err(|e| e.to_string())
}

/// Performs one client call against a running service and prints the
/// result (ids and releases go to stdout for scripting).
fn run_client(args: &ClientArgs) -> Result<(), String> {
    let config = ClientConfig {
        max_retries: args.retries,
        ..ClientConfig::with_timeout(std::time::Duration::from_millis(args.timeout_ms))
    };
    let mut client = Client::connect_with(&args.addr, config).map_err(|e| e.to_string())?;
    client.set_credential(args.auth.clone());
    match &args.op {
        ClientOp::Open {
            tenant,
            epsilon,
            delta,
            token,
        } => {
            let budget = privacy_level(*epsilon, *delta);
            match token {
                Some(token) => client.open_tenant_with_token(tenant, budget, token),
                None => client.open_tenant(tenant, budget),
            }
            .map_err(|e| e.to_string())?;
            println!("opened {tenant}");
        }
        ClientOp::Register {
            tenant,
            dataset,
            workload,
            strategy,
            budgets,
            epsilon,
            delta,
        } => {
            let schema = dataset_schema(*dataset);
            let w = build_workload(&schema, workload).map_err(|e| e.to_string())?;
            let spec = WorkloadSpec::Marginals {
                workload: w,
                strategy: *strategy,
                cluster: ClusterConfig::default(),
            };
            let id = client
                .register_compile(
                    tenant,
                    spec,
                    *budgets,
                    privacy_level(*epsilon, *delta),
                    Neighboring::AddRemove,
                )
                .map_err(|e| e.to_string())?;
            println!("{id}");
        }
        ClientOp::Bind {
            tenant,
            plan,
            table,
        } => {
            let id = client
                .bind(tenant, plan, table)
                .map_err(|e| e.to_string())?;
            println!("{id}");
        }
        ClientOp::Release {
            tenant,
            session,
            seed,
            batch,
            request_id,
        } => {
            let seeds: Vec<u64> = (0..*batch as u64).map(|i| seed.wrapping_add(i)).collect();
            let releases = match request_id {
                Some(id) => client.release_with_id(tenant, session, &seeds, id),
                None => client.release(tenant, session, &seeds),
            }
            .map_err(|e| e.to_string())?;
            for release in &releases {
                println!("{}", protocol::render_line(release));
            }
        }
        ClientOp::StreamOpen {
            tenant,
            plan,
            table,
        } => {
            let id = client
                .stream_open(tenant, plan, table.as_deref())
                .map_err(|e| e.to_string())?;
            println!("{id}");
        }
        ClientOp::Ingest {
            tenant,
            stream,
            cell,
            delta,
        } => {
            client
                .ingest(tenant, stream, *cell, *delta)
                .map_err(|e| e.to_string())?;
            println!("ingested {delta} at cell {cell}");
        }
        ClientOp::ReleaseCurrent {
            tenant,
            stream,
            seed,
            batch,
            request_id,
        } => {
            let seeds: Vec<u64> = (0..*batch as u64).map(|i| seed.wrapping_add(i)).collect();
            let releases = client
                .release_current(tenant, stream, &seeds, request_id.as_deref())
                .map_err(|e| e.to_string())?;
            for release in &releases {
                println!("{}", protocol::render_line(release));
            }
        }
        ClientOp::Status { tenant } => {
            let s = client.budget_status(tenant).map_err(|e| e.to_string())?;
            println!(
                "tenant {tenant}: total (ε = {}, δ = {}), spent (ε = {}, δ = {}), \
                 remaining (ε = {}, δ = {}), {} charges",
                s.total_epsilon,
                s.total_delta,
                s.spent_epsilon,
                s.spent_delta,
                s.remaining_epsilon,
                s.remaining_delta,
                s.charges
            );
        }
        ClientOp::Ping => {
            let tables = client.ping().map_err(|e| e.to_string())?;
            println!("ok: tables {tables:?}");
        }
        ClientOp::Shutdown => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutdown acknowledged");
        }
    }
    Ok(())
}

/// Phase 1 + 2: compile one plan, bind the dataset, draw `--batch`
/// deterministic releases (seeds `seed..seed+batch`) from it.
fn run_release(args: &ReleaseArgs) -> Result<(), String> {
    let (schema, table) = load_dataset(args.dataset, 20130401).map_err(|e| e.to_string())?;
    let workload = build_workload(&schema, &args.workload).map_err(|e| e.to_string())?;
    let privacy = privacy_level(args.epsilon, args.delta);
    let plan = compile_plan(
        &schema,
        workload,
        args.strategy,
        args.budgets,
        privacy,
        args.cluster,
    )
    .map_err(|e| e.to_string())?;
    let session = Session::bind(&plan, &table).map_err(|e| e.to_string())?;
    let seeds: Vec<u64> = (0..args.batch as u64)
        .map(|i| args.seed.wrapping_add(i))
        .collect();
    let batch = session.release_batch(&seeds).map_err(|e| e.to_string())?;

    let mut releases = Vec::with_capacity(batch.len());
    for r in batch {
        let mut release = r
            .into_release()
            .expect("marginal sessions produce marginal releases");
        if args.nonnegative {
            let (_, projected) = dp_core::postprocess::project_nonnegative(
                schema.domain_bits(),
                &release.answers,
                dp_core::postprocess::ProjectOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            release.answers = projected;
        }
        releases.push(release);
    }

    eprintln!(
        "released {} × {} marginals with method {} (achieved ε = {:.6} per release, one plan)",
        releases.len(),
        releases[0].answers.len(),
        releases[0].label,
        releases[0].achieved_epsilon
    );
    // --json selects the full-release document either way; --batch > 1
    // wraps the per-release documents (full or marginal-list) in one array.
    let json = match (args.json, args.batch > 1) {
        (true, true) => release_batch_to_json(&releases),
        (true, false) => release_to_json(&releases[0]),
        (false, false) => marginals_to_json(&releases[0].answers),
        (false, true) => {
            let docs: Vec<String> = releases
                .iter()
                .map(|r| marginals_to_json(&r.answers))
                .collect();
            format!("[\n{}\n]", docs.join(",\n"))
        }
    };
    match &args.output {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
