//! `datacube-dp` command-line tool: differentially private release of
//! marginal workloads over the bundled datasets. See [`datacube_dp::cli`]
//! for the argument grammar.

use datacube_dp::cli::{
    build_workload, load_dataset, marginals_to_json, parse_args, release_to_json, Command,
    ReleaseArgs, USAGE,
};
use datacube_dp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Inspect { dataset }) => match run_inspect(dataset) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Ok(Command::Release(args)) => match run_release(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn run_inspect(dataset: datacube_dp::cli::DatasetArg) -> Result<(), String> {
    let (schema, table) = load_dataset(dataset, 20130401).map_err(|e| e.to_string())?;
    println!("attributes: {}", schema.num_attributes());
    for (i, a) in schema.attributes().iter().enumerate() {
        println!(
            "  [{i}] {} (cardinality {}, {} bits)",
            a.name,
            a.cardinality,
            a.bits()
        );
    }
    println!(
        "domain: 2^{} = {} cells",
        schema.domain_bits(),
        schema.domain_size()
    );
    println!("records: {}", table.total());
    Ok(())
}

fn run_release(args: &ReleaseArgs) -> Result<(), String> {
    let (schema, table) = load_dataset(args.dataset, 20130401).map_err(|e| e.to_string())?;
    let workload = build_workload(&schema, &args.workload).map_err(|e| e.to_string())?;
    let privacy = match args.delta {
        None => PrivacyLevel::Pure {
            epsilon: args.epsilon,
        },
        Some(delta) => PrivacyLevel::Approx {
            epsilon: args.epsilon,
            delta,
        },
    };
    let planner = ReleasePlanner::new(&table, &workload, args.strategy, args.budgets)
        .map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut release = planner
        .release(privacy, &mut rng)
        .map_err(|e| e.to_string())?;

    if args.nonnegative {
        let (_, projected) = dp_core::postprocess::project_nonnegative(
            schema.domain_bits(),
            &release.answers,
            dp_core::postprocess::ProjectOptions::default(),
        )
        .map_err(|e| e.to_string())?;
        release.answers = projected;
    }

    eprintln!(
        "released {} marginals with method {} (achieved ε = {:.6})",
        release.answers.len(),
        release.label,
        release.achieved_epsilon
    );
    let json = if args.json {
        release_to_json(&release)
    } else {
        marginals_to_json(&release.answers)
    };
    match &args.output {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
